//! Region-partitioned conservative parallel DES.
//!
//! [`ShardedSimulator`] splits the node population into `S` spatially
//! contiguous shards (nodes sorted by position, chunked evenly) and
//! gives each shard its own event heap, RNG streams and worker thread.
//! Shards synchronize with the classic conservative (Chandy–Misra–
//! Bryant-style) discipline: the **lookahead** `L` is the radio's
//! zero-byte latency, the minimum delay any cross-shard effect can
//! have, so a shard may safely execute every event strictly earlier
//! than the earliest instant at which any other shard could still send
//! it something.
//!
//! # Horizon protocol
//!
//! There are no null messages and no barriers. Each shard `s`
//! publishes a single atomic **clock** — a promise that every message
//! it will *ever* send from now on is delivered no earlier than the
//! published value. The promise is computed as
//! `min(head_s, min_{p≠s} clock_p) + L`: shard `s` can only produce a
//! send by executing either its own earliest pending event (`head_s`)
//! or some future arrival (which, by the other shards' promises,
//! arrives no earlier than `min clock_p`), and either way the send is
//! delivered at least `L` later. Clocks are monotone, so the fixed
//! point is approached from below and every published value is sound.
//! A shard executes its head event at time `t` iff `t` is strictly
//! below every other shard's clock (strictness is what keeps
//! same-timestamp cross-shard races impossible) and `t` is within the
//! run deadline; with `L > 0` the globally earliest pending event is
//! always eventually executable, so the protocol is deadlock-free.
//!
//! Message visibility rides on a release/acquire pair: a worker
//! enqueues its cross-shard sends into the target's channel *before*
//! release-publishing its clock, and a worker always acquire-loads the
//! other clocks *before* draining its inbox — so once a shard observes
//! `clock_p > t`, every message from `p` with delivery time `≤ t` is
//! already in its inbox. That same ordering makes run termination
//! exact: a shard leaves the run loop only once both its own head and
//! every other clock are beyond the deadline.
//!
//! # Determinism
//!
//! Determinism does not come from the schedule — it comes from making
//! every draw independent of the schedule. Each node owns a private
//! RNG stream and fault sampler seeded from `(run seed, node id)` (the
//! same derivation the sequential [`Simulator`] uses), and every event
//! carries a total-order key `(time, origin shard, origin sequence)`
//! assigned by the *sending* shard at send time — never by arrival
//! order. Two same-run-shape executions therefore produce identical
//! per-node event sequences, identical draws, and identical merged
//! stats, regardless of how worker threads interleave. Two pins tie
//! the engine down: at `workers = 1` the engine is **bit-equal** to
//! [`Simulator`] (one shard, one heap, the identical shared
//! delivery-planner code and key order), and at `workers > 1` runs are
//! outcome-pinned (same winner maps, formation counts and conserved
//! capacity) by the system-level equivalence suites.
//!
//! # When the engine falls back to one thread
//!
//! Parallel execution requires an immutable node table for the whole
//! run. Whenever that cannot be guaranteed — mobility is armed, a
//! `Down`/`Up` event is pending, the radio has zero latency (no
//! lookahead), or there is only one shard or worker — the engine runs
//! the same sharded data structures on the calling thread, executing
//! the globally smallest key each step. The merged path and the
//! parallel path assign identical keys and make identical draws, so
//! eligibility never changes outcomes, only parallelism.
//!
//! [`Simulator`]: crate::Simulator

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam::channel::{unbounded, Receiver, Sender};
use crossbeam::utils::CachePadded;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::fault::{FaultPlan, FaultSampler, PartitionPlan, PartitionTimeline};
use crate::geometry::Point;
use crate::grid::NeighbourIndex;
use crate::mobility::{Mobility, MobilityState};
use crate::sim::{
    node_stream_seed, Command, Ctx, Draws, EventKind, Medium, NetApp, NodeId, NodeSlot, Scheduled,
    SendKind, SimConfig,
};
use crate::stats::NetStats;
use crate::time::{SimDuration, SimTime};

/// The frozen node→shard assignment, fixed at the first run.
struct Partition {
    /// Number of shards (= `min(workers, nodes)`, at least 1).
    shards: usize,
    /// `NodeId → shard`.
    shard_of: Vec<u32>,
    /// `NodeId → index into its shard's member-parallel tables`.
    local_of: Vec<u32>,
    /// Member node ids per shard (spatial order).
    members: Vec<Vec<NodeId>>,
    /// Conservative lookahead: the radio's zero-byte latency.
    lookahead: SimDuration,
}

impl Partition {
    /// Shard that anchors (and therefore executes) `kind`. Events with
    /// no node anchor and events naming unknown nodes go to shard 0,
    /// whose executor skips them like the sequential engine does.
    fn anchor_shard<M>(&self, kind: &EventKind<M>) -> usize {
        anchor_node(kind).map_or(0, |n| {
            self.shard_of.get(n.0 as usize).map_or(0, |&s| s as usize)
        })
    }
}

/// The node an event is anchored at: the node whose RNG stream backs
/// its handler and whose shard owns it.
fn anchor_node<M>(kind: &EventKind<M>) -> Option<NodeId> {
    match kind {
        EventKind::Deliver { dst, .. } => Some(*dst),
        EventKind::Timer { node, .. } => Some(*node),
        EventKind::Down(n) | EventKind::Up(n) => Some(*n),
        EventKind::MobilityTick => None,
    }
}

/// One shard's mutable state: its event heap, sequence counter, the
/// RNG streams and fault samplers of its member nodes, its own stats
/// block, and reused scratch buffers so the hot loop stays alloc-free
/// exactly like the sequential engine.
struct ShardState<M> {
    heap: BinaryHeap<Scheduled<M>>,
    seq: u64,
    now: SimTime,
    /// Member-parallel per-node RNG streams.
    streams: Vec<ChaCha8Rng>,
    /// Member-parallel fault samplers (empty when no plan samples).
    fault: Vec<FaultSampler>,
    stats: NetStats,
    bcast: Vec<(NodeId, f64)>,
    cands: Vec<NodeId>,
    cmds: Vec<Command<M>>,
}

impl<M> ShardState<M> {
    fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            streams: Vec::new(),
            fault: Vec::new(),
            stats: NetStats::default(),
            bcast: Vec::new(),
            cands: Vec::new(),
            cmds: Vec::new(),
        }
    }
}

/// Immutable state shared by every worker for the duration of a run.
#[derive(Clone, Copy)]
struct Fabric<'a> {
    nodes: &'a [NodeSlot],
    index: &'a NeighbourIndex,
    radio: &'a crate::radio::RadioModel,
    part: &'a Partition,
    /// Expanded partition schedule (a read-only timestamp lookup, so it
    /// is safely shared by every worker).
    cuts: Option<&'a PartitionTimeline>,
}

/// Executes one Deliver/Timer/Down/Up event against shard `q`'s state.
/// Newly scheduled events are all keyed `(at, q, seq)` by this shard;
/// same-shard events go straight onto this shard's heap (the common
/// case — and the whole event population at one worker, which keeps
/// the serial path's per-event cost at the sequential engine's level),
/// while cross-shard events are appended to `out` for the caller to
/// route. For Down/Up the caller has already flipped the liveness flag
/// (the node table is immutable here); this only runs callbacks.
fn execute_event<M, A: NetApp<M>>(
    fabric: &Fabric<'_>,
    q: u32,
    st: &mut ShardState<M>,
    app: &mut A,
    ev: Scheduled<M>,
    out: &mut Vec<Scheduled<M>>,
) {
    let now = ev.at;
    let key = ev.key();
    st.now = now;
    let is_up = |n: NodeId| -> bool { fabric.nodes.get(n.0 as usize).is_some_and(|slot| slot.up) };
    macro_rules! with_ctx {
        ($anchor:expr, |$ctx:ident| $call:expr) => {{
            let anchor: NodeId = $anchor;
            let local = fabric.part.local_of[anchor.0 as usize] as usize;
            let cmds = std::mem::take(&mut st.cmds);
            let mut $ctx = Ctx {
                now,
                rng: &mut st.streams[local],
                cmds,
                nodes: fabric.nodes,
                index: fabric.index,
                radio: fabric.radio,
                key,
            };
            $call;
            let mut cmds = $ctx.cmds;
            apply_commands(fabric, q, now, anchor, st, &mut cmds, out);
            st.cmds = cmds;
        }};
    }
    match ev.kind {
        EventKind::Deliver {
            kind,
            src,
            dst,
            bytes,
            sent_at,
            msg,
        } => {
            if is_up(dst) {
                match kind {
                    SendKind::Unicast => st.stats.unicasts_delivered += 1,
                    SendKind::Broadcast => st.stats.broadcast_deliveries += 1,
                }
                st.stats.record_delivery(now.since(sent_at), bytes);
                with_ctx!(dst, |ctx| app.on_message(&mut ctx, dst, src, &msg));
            } else {
                match kind {
                    SendKind::Unicast => st.stats.unicasts_unreachable += 1,
                    SendKind::Broadcast => st.stats.broadcasts_undelivered += 1,
                }
            }
        }
        EventKind::Timer { node, token } => {
            if is_up(node) {
                with_ctx!(node, |ctx| app.on_timer(&mut ctx, node, token));
            }
        }
        EventKind::Down(node) => {
            with_ctx!(node, |ctx| app.on_node_down(&mut ctx, node));
        }
        EventKind::Up(node) => {
            with_ctx!(node, |ctx| app.on_node_up(&mut ctx, node));
        }
        EventKind::MobilityTick => unreachable!("mobility ticks are handled by the merged loop"),
    }
}

/// Applies the commands a handler anchored at `anchor` emitted,
/// drawing from the anchor's RNG stream and fault sampler — the same
/// shared planner code ([`Medium`]) the sequential engine uses, so the
/// draw sequences are identical instruction for instruction.
fn apply_commands<M>(
    fabric: &Fabric<'_>,
    q: u32,
    now: SimTime,
    anchor: NodeId,
    st: &mut ShardState<M>,
    cmds: &mut Vec<Command<M>>,
    out: &mut Vec<Scheduled<M>>,
) {
    let medium = Medium {
        radio: fabric.radio,
        nodes: fabric.nodes,
        index: fabric.index,
        cuts: fabric.cuts,
    };
    let local = fabric.part.local_of[anchor.0 as usize] as usize;
    // Assigns the next `(at, q, seq)` key and routes: events anchored
    // in this shard skip `out` and land directly on the heap.
    macro_rules! emit {
        ($at:expr, $target:expr, $kind:expr) => {{
            let target: NodeId = $target;
            let seq = st.seq;
            st.seq += 1;
            let ev = Scheduled {
                at: $at,
                shard: q,
                seq,
                kind: $kind,
            };
            if fabric.part.shard_of[target.0 as usize] == q {
                st.heap.push(ev);
            } else {
                out.push(ev);
            }
        }};
    }
    for cmd in cmds.drain(..) {
        match cmd {
            Command::Unicast {
                src,
                dst,
                bytes,
                msg,
            } => {
                let times = medium.plan_unicast(
                    &mut Draws {
                        rng: &mut st.streams[local],
                        fault: st.fault.get_mut(local),
                        stats: &mut st.stats,
                    },
                    src,
                    dst,
                    now,
                    bytes,
                );
                for at in times.into_iter().flatten() {
                    emit!(
                        at,
                        dst,
                        EventKind::Deliver {
                            kind: SendKind::Unicast,
                            src,
                            dst,
                            bytes,
                            sent_at: now,
                            msg: std::sync::Arc::clone(&msg),
                        }
                    );
                }
            }
            Command::Broadcast { src, bytes, msg } => {
                let mut cands = std::mem::take(&mut st.cands);
                let mut targets = std::mem::take(&mut st.bcast);
                medium.collect_broadcast_targets(&mut st.stats, src, &mut cands, &mut targets);
                st.cands = cands;
                let latency = fabric.radio.latency(bytes);
                for &(dst, dist) in &targets {
                    let times = medium.plan_broadcast_copy(
                        &mut Draws {
                            rng: &mut st.streams[local],
                            fault: st.fault.get_mut(local),
                            stats: &mut st.stats,
                        },
                        src,
                        dst,
                        dist,
                        now + latency,
                    );
                    for at in times.into_iter().flatten() {
                        emit!(
                            at,
                            dst,
                            EventKind::Deliver {
                                kind: SendKind::Broadcast,
                                src,
                                dst,
                                bytes,
                                sent_at: now,
                                msg: std::sync::Arc::clone(&msg),
                            }
                        );
                    }
                }
                st.bcast = targets;
            }
            Command::Timer { node, delay, token } => {
                emit!(now + delay, node, EventKind::Timer { node, token });
            }
        }
    }
}

/// Everything one parallel worker needs besides its own shard state.
struct Worker<'a, M> {
    q: usize,
    rx: Receiver<Scheduled<M>>,
    txs: Vec<Sender<Scheduled<M>>>,
    clocks: &'a [CachePadded<AtomicU64>],
    fabric: Fabric<'a>,
    /// Lookahead in µs (strictly positive in parallel mode).
    lookahead: u64,
    deadline: SimTime,
}

impl<M: Send + Sync> Worker<'_, M> {
    /// The conservative run loop for one shard. Returns the number of
    /// events executed.
    fn run<A: NetApp<M>>(&self, st: &mut ShardState<M>, app: &mut A) -> u64 {
        let q = self.q;
        let mut processed = 0u64;
        let mut out: Vec<Scheduled<M>> = Vec::new();
        loop {
            // (a) Acquire-load every other shard's promise FIRST: any
            // message counted on below was enqueued before its sender
            // release-published the clock value we are about to read.
            let mut min_other = u64::MAX;
            for (p, c) in self.clocks.iter().enumerate() {
                if p != q {
                    min_other = min_other.min(c.load(Ordering::Acquire));
                }
            }
            // (b) Drain the inbox AFTER the clock loads (see above).
            while let Ok(ev) = self.rx.try_recv() {
                st.heap.push(ev);
            }
            // (c) Own head, (d) publish the new promise — monotone, and
            // published before the exit check so the final value every
            // shard leaves behind is itself beyond the deadline.
            let head = st.heap.peek().map_or(u64::MAX, |e| e.at.0);
            let bound = head.min(min_other).saturating_add(self.lookahead);
            self.clocks[q].fetch_max(bound, Ordering::Release);
            // (e) Done: nothing of ours and nothing inbound can still
            // land inside this run's deadline.
            if head.min(min_other) > self.deadline.0 {
                break;
            }
            // (f) Execute every event strictly below the horizon.
            let mut executed_any = false;
            while let Some(h) = st.heap.peek() {
                if h.at.0 > self.deadline.0 || h.at.0 >= min_other {
                    break;
                }
                let Some(ev) = st.heap.pop() else { break };
                execute_event(&self.fabric, q as u32, st, app, ev, &mut out);
                processed += 1;
                executed_any = true;
                // `out` holds only cross-shard events (same-shard ones
                // went straight onto the heap inside `execute_event`).
                for ev in out.drain(..) {
                    let target = self.fabric.part.anchor_shard(&ev.kind);
                    debug_assert_ne!(target, q, "same-shard event routed via out");
                    // Conservative soundness: a cross-shard effect
                    // may never land inside the lookahead window.
                    // Deliveries can't (latency >= lookahead by
                    // construction); this catches apps arming
                    // sub-lookahead timers on *other* nodes.
                    assert!(
                        ev.at.0 >= st.now.0.saturating_add(self.lookahead),
                        "cross-shard event within the lookahead window \
                         (scheduled {} at t={}, lookahead {} us)",
                        ev.at.0,
                        st.now.0,
                        self.lookahead,
                    );
                    // Send failures are impossible while the scope
                    // is alive: receivers outlive the run.
                    let _ = self.txs[target].send(ev);
                }
            }
            if !executed_any {
                std::thread::yield_now();
            }
        }
        processed
    }
}

/// The region-partitioned parallel discrete-event simulator.
///
/// Mirrors the [`Simulator`](crate::Simulator) API with two
/// differences: construction takes a worker count, and
/// [`run_until`](ShardedSimulator::run_until) takes **one app per
/// shard** (call [`shard_count`](ShardedSimulator::shard_count) /
/// [`shard_of`](ShardedSimulator::shard_of) after adding nodes to
/// split application state along shard lines). The partition freezes
/// at the first run; nodes added later join the last shard.
pub struct ShardedSimulator<M> {
    config: SimConfig,
    workers: usize,
    nodes: Vec<NodeSlot>,
    index: NeighbourIndex,
    /// Control RNG: placement and mobility, like the sequential engine.
    rng: ChaCha8Rng,
    mobility_armed: bool,
    fault_plan: Option<FaultPlan>,
    /// Expanded link-partition schedule (distinct from the node→shard
    /// `part`itioning below); shared read-only with every worker.
    partition: Option<PartitionTimeline>,
    /// Events scheduled before the partition froze, in call order.
    staged: Vec<(SimTime, EventKind<M>)>,
    part: Option<Partition>,
    shards: Vec<ShardState<M>>,
    now: SimTime,
}

impl<M> ShardedSimulator<M> {
    /// Creates an empty sharded simulation that will run on up to
    /// `workers` threads (clamped to at least 1; the shard count is
    /// additionally clamped to the node count at freeze time).
    pub fn new(config: SimConfig, workers: usize) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(config.seed);
        let index = NeighbourIndex::new(&config.area, config.radio.range_m);
        Self {
            config,
            workers: workers.max(1),
            nodes: Vec::new(),
            index,
            rng,
            mobility_armed: false,
            fault_plan: None,
            partition: None,
            staged: Vec::new(),
            part: None,
            shards: Vec::new(),
            now: SimTime::ZERO,
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Adds a node at `pos` with the given mobility; returns its id.
    pub fn add_node(&mut self, pos: Point, mobility: Mobility) -> NodeId {
        let pos = self.config.area.clamp(pos);
        let id = NodeId(self.nodes.len() as u32);
        let mobile = !matches!(mobility, Mobility::Static);
        self.nodes.push(NodeSlot {
            pos,
            mobility: MobilityState::new(mobility, pos),
            up: true,
        });
        self.index.insert(id, pos);
        if let Some(part) = self.part.as_mut() {
            // Post-freeze: join the last shard (partition stays fixed).
            let q = part.shards - 1;
            part.shard_of.push(q as u32);
            part.local_of.push(part.members[q].len() as u32);
            part.members[q].push(id);
            let st = &mut self.shards[q];
            st.streams.push(ChaCha8Rng::seed_from_u64(node_stream_seed(
                self.config.seed,
                id.0,
            )));
            if let Some(p) = self.fault_plan {
                st.fault.push(FaultSampler::for_node(p, id.0));
            }
        }
        if mobile && !self.mobility_armed {
            self.mobility_armed = true;
            let at = self.now + self.config.mobility_tick;
            self.schedule_event(at, EventKind::MobilityTick);
        }
        id
    }

    /// Adds a node at a uniformly random position (control RNG — the
    /// same draw sequence as the sequential engine's).
    pub fn add_node_random(&mut self, mobility: Mobility) -> NodeId {
        let p = self.config.area.sample(&mut self.rng);
        self.add_node(p, mobility)
    }

    /// Installs a [`FaultPlan`]; per-node samplers are (re)seeded from
    /// `(plan.seed, node)` exactly like the sequential engine's.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan.samples_anything().then_some(plan);
        if let Some(part) = self.part.as_ref() {
            for (q, st) in self.shards.iter_mut().enumerate() {
                st.fault = match self.fault_plan {
                    Some(p) => part.members[q]
                        .iter()
                        .map(|n| FaultSampler::for_node(p, n.0))
                        .collect(),
                    None => Vec::new(),
                };
            }
        }
    }

    /// Installs a [`PartitionPlan`], expanded against the current node
    /// count exactly like the sequential engine's
    /// [`Simulator::set_partition_plan`](crate::Simulator::set_partition_plan):
    /// same expansion, same per-delivery lookup, so both engines cut
    /// exactly the same links. Install after every node has been added.
    pub fn set_partition_plan(&mut self, plan: &PartitionPlan) {
        let tl = plan.expand(self.nodes.len());
        self.partition = (!tl.is_empty()).then_some(tl);
    }

    /// Current time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Position of a node.
    pub fn position(&self, n: NodeId) -> Option<Point> {
        self.nodes.get(n.0 as usize).map(|s| s.pos)
    }

    /// Liveness of a node.
    pub fn is_up(&self, n: NodeId) -> bool {
        self.nodes.get(n.0 as usize).is_some_and(|s| s.up)
    }

    /// The radio model in force.
    pub fn radio(&self) -> &crate::radio::RadioModel {
        &self.config.radio
    }

    /// Network counters so far, merged across shards. Counter merging
    /// is pure addition, so this equals what an equivalent sequential
    /// run accumulates.
    pub fn stats(&self) -> NetStats {
        let mut total = NetStats::default();
        for st in &self.shards {
            total.merge(&st.stats);
        }
        total
    }

    /// Schedules a timer for the application (e.g. to bootstrap it).
    pub fn schedule_timer(&mut self, node: NodeId, delay: SimDuration, token: u64) {
        let at = self.now + delay;
        self.schedule_event(at, EventKind::Timer { node, token });
    }

    /// Schedules a failure: `node` goes down at `now + delay`.
    pub fn schedule_down(&mut self, node: NodeId, delay: SimDuration) {
        let at = self.now + delay;
        self.schedule_event(at, EventKind::Down(node));
    }

    /// Schedules a recovery: `node` comes back at `now + delay`.
    pub fn schedule_up(&mut self, node: NodeId, delay: SimDuration) {
        let at = self.now + delay;
        self.schedule_event(at, EventKind::Up(node));
    }

    /// Live single-hop neighbours of `node`, ascending id order.
    pub fn neighbours(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.neighbours_into(node, &mut out);
        out
    }

    /// Buffer-reusing variant of [`ShardedSimulator::neighbours`].
    pub fn neighbours_into(&self, node: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        let Some(slot) = self.nodes.get(node.0 as usize) else {
            return;
        };
        if !slot.up {
            return;
        }
        self.index.candidates_into(slot.pos, out);
        out.retain(|&c| {
            c != node && {
                let s = &self.nodes[c.0 as usize];
                s.up && self.config.radio.in_range(slot.pos.distance(&s.pos))
            }
        });
        out.sort_unstable();
    }

    /// Freezes the node→shard partition (idempotent; implied by the
    /// first run). Nodes are sorted by `(x, y, id)` and chunked into
    /// `min(workers, nodes)` near-equal contiguous groups, so shards
    /// are spatially coherent and cross-shard traffic tracks the radio
    /// range rather than the node id layout.
    pub fn freeze(&mut self) {
        if self.part.is_some() {
            return;
        }
        let n = self.nodes.len();
        let shards = self.workers.min(n).max(1);
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&a, &b| {
            let pa = self.nodes[a as usize].pos;
            let pb = self.nodes[b as usize].pos;
            pa.x.total_cmp(&pb.x)
                .then(pa.y.total_cmp(&pb.y))
                .then(a.cmp(&b))
        });
        let mut shard_of = vec![0u32; n];
        let mut local_of = vec![0u32; n];
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); shards];
        let base = n / shards;
        let rem = n % shards;
        let mut cursor = 0usize;
        for (q, group) in members.iter_mut().enumerate() {
            let len = base + usize::from(q < rem);
            for &id in &order[cursor..cursor + len] {
                shard_of[id as usize] = q as u32;
                local_of[id as usize] = group.len() as u32;
                group.push(NodeId(id));
            }
            cursor += len;
        }
        let mut states: Vec<ShardState<M>> = (0..shards).map(|_| ShardState::new()).collect();
        for (q, st) in states.iter_mut().enumerate() {
            st.now = self.now;
            st.streams = members[q]
                .iter()
                .map(|id| ChaCha8Rng::seed_from_u64(node_stream_seed(self.config.seed, id.0)))
                .collect();
            if let Some(p) = self.fault_plan {
                st.fault = members[q]
                    .iter()
                    .map(|id| FaultSampler::for_node(p, id.0))
                    .collect();
            }
        }
        self.part = Some(Partition {
            shards,
            shard_of,
            local_of,
            members,
            lookahead: self.config.radio.latency(0),
        });
        self.shards = states;
        // Distribute pre-freeze schedules in call order: with one
        // shard this reproduces the sequential engine's global
        // sequence numbers exactly.
        for (at, kind) in std::mem::take(&mut self.staged) {
            self.schedule_event(at, kind);
        }
    }

    /// Number of shards (freezes the partition if needed) — the length
    /// [`run_until`](ShardedSimulator::run_until) expects `apps` to be.
    pub fn shard_count(&mut self) -> usize {
        self.freeze();
        self.shards.len()
    }

    /// The shard owning `node` (freezes the partition if needed).
    pub fn shard_of(&mut self, node: NodeId) -> usize {
        self.freeze();
        self.part.as_ref().map_or(0, |p| {
            p.shard_of.get(node.0 as usize).map_or(0, |&s| s as usize)
        })
    }

    /// Routes one event: staged before the freeze, pushed into its
    /// anchor shard's heap (keyed by that shard) afterwards.
    fn schedule_event(&mut self, at: SimTime, kind: EventKind<M>) {
        match self.part.as_ref() {
            None => self.staged.push((at, kind)),
            Some(part) => {
                let q = part.anchor_shard(&kind);
                let st = &mut self.shards[q];
                let seq = st.seq;
                st.seq += 1;
                st.heap.push(Scheduled {
                    at,
                    shard: q as u32,
                    seq,
                    kind,
                });
            }
        }
    }

    /// Whether this run can execute in parallel: more than one worker
    /// and shard, positive lookahead, and a node table guaranteed
    /// immutable for the whole run (no mobility, no pending liveness
    /// events). Otherwise the merged single-thread path runs — with
    /// identical keys and draws, so eligibility never changes results.
    fn parallel_eligible(&self) -> bool {
        let Some(part) = self.part.as_ref() else {
            return false;
        };
        self.workers > 1
            && part.shards > 1
            && part.lookahead > SimDuration::ZERO
            && !self.mobility_armed
            && !self.shards.iter().any(|st| {
                st.heap
                    .iter()
                    .any(|e| matches!(e.kind, EventKind::Down(_) | EventKind::Up(_)))
            })
    }

    /// Runs until every shard drains or `deadline` passes, whichever
    /// comes first; returns the number of events processed. `apps`
    /// must hold exactly one application per shard
    /// ([`shard_count`](ShardedSimulator::shard_count)); worker `q`
    /// only ever touches `apps[q]`, which is what makes handler state
    /// thread-safe without locks.
    pub fn run_until<A>(&mut self, apps: &mut [A], deadline: SimTime) -> u64
    where
        M: Send + Sync,
        A: NetApp<M> + Send,
    {
        self.freeze();
        assert_eq!(
            apps.len(),
            self.shards.len(),
            "run_until needs exactly one app per shard"
        );
        if self.parallel_eligible() {
            self.run_parallel(apps, deadline)
        } else {
            self.run_merged(apps, deadline)
        }
    }

    /// Single-thread fallback: execute the globally smallest event key
    /// across all shard heaps, exactly as the parallel path would have
    /// ordered them. Handles the cases the parallel path excludes
    /// (mobility ticks, liveness flips, zero lookahead).
    fn run_merged<A: NetApp<M>>(&mut self, apps: &mut [A], deadline: SimTime) -> u64 {
        let mut processed = 0u64;
        let mut out: Vec<Scheduled<M>> = Vec::new();
        loop {
            let mut best: Option<(usize, (SimTime, u32, u64))> = None;
            for (i, st) in self.shards.iter().enumerate() {
                if let Some(head) = st.heap.peek() {
                    let k = head.key();
                    if best.is_none_or(|(_, bk)| k < bk) {
                        best = Some((i, k));
                    }
                }
            }
            let Some((qi, key)) = best else {
                break;
            };
            if key.0 > deadline {
                self.now = deadline;
                break;
            }
            let Some(ev) = self.shards[qi].heap.pop() else {
                break;
            };
            self.now = ev.at;
            processed += 1;
            match ev.kind {
                EventKind::MobilityTick => {
                    let dt = self.config.mobility_tick;
                    let area = self.config.area;
                    for slot in &mut self.nodes {
                        slot.pos = slot.mobility.advance(slot.pos, dt, &area, &mut self.rng);
                    }
                    self.index.rebuild(self.nodes.iter().map(|s| s.pos));
                    let at = self.now + dt;
                    self.schedule_event(at, EventKind::MobilityTick);
                    continue;
                }
                EventKind::Down(node) => {
                    let Some(slot) = self.nodes.get_mut(node.0 as usize) else {
                        continue;
                    };
                    slot.up = false;
                }
                EventKind::Up(node) => {
                    let Some(slot) = self.nodes.get_mut(node.0 as usize) else {
                        continue;
                    };
                    slot.up = true;
                }
                _ => {}
            }
            let Some(part) = self.part.as_ref() else {
                break;
            };
            let fabric = Fabric {
                nodes: &self.nodes,
                index: &self.index,
                radio: &self.config.radio,
                part,
                cuts: self.partition.as_ref(),
            };
            execute_event(
                &fabric,
                qi as u32,
                &mut self.shards[qi],
                &mut apps[qi],
                ev,
                &mut out,
            );
            // Only cross-shard events reach `out`; same-shard ones were
            // pushed directly inside `execute_event`.
            for ev in out.drain(..) {
                let target = part.anchor_shard(&ev.kind);
                self.shards[target].heap.push(ev);
            }
        }
        processed
    }

    /// The conservative parallel path: one scoped worker thread per
    /// shard, horizon clocks in a cache-padded atomic array, cross-
    /// shard events over channels, leftover in-flight events drained
    /// back into their heaps after the join.
    fn run_parallel<A>(&mut self, apps: &mut [A], deadline: SimTime) -> u64
    where
        M: Send + Sync,
        A: NetApp<M> + Send,
    {
        let Some(part) = self.part.take() else {
            return 0;
        };
        let start_now = self.now;
        let mut states = std::mem::take(&mut self.shards);
        for st in &mut states {
            st.now = start_now;
        }
        let s = part.shards;
        let clocks: Vec<CachePadded<AtomicU64>> = (0..s)
            .map(|_| CachePadded::new(AtomicU64::new(start_now.0)))
            .collect();
        let mut txs: Vec<Sender<Scheduled<M>>> = Vec::with_capacity(s);
        let mut rxs: Vec<Receiver<Scheduled<M>>> = Vec::with_capacity(s);
        for _ in 0..s {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        let nodes = &self.nodes;
        let index = &self.index;
        let radio = &self.config.radio;
        let cuts = self.partition.as_ref();
        let part_ref = &part;
        let clocks_ref = &clocks;
        let lookahead = part.lookahead.as_micros();
        let scope_result = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(s);
            for (q, ((mut st, rx), app)) in
                states.into_iter().zip(rxs).zip(apps.iter_mut()).enumerate()
            {
                let worker = Worker {
                    q,
                    rx,
                    txs: txs.clone(),
                    clocks: clocks_ref,
                    fabric: Fabric {
                        nodes,
                        index,
                        radio,
                        part: part_ref,
                        cuts,
                    },
                    lookahead,
                    deadline,
                };
                handles.push(scope.spawn(move |_| {
                    let n = worker.run(&mut st, app);
                    (st, worker.rx, n)
                }));
            }
            let mut joined = Vec::with_capacity(s);
            for h in handles {
                match h.join() {
                    Ok(t) => joined.push(t),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            joined
        });
        let joined = match scope_result {
            Ok(j) => j,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        drop(txs);
        let mut total = 0u64;
        let mut max_now = start_now;
        self.shards = joined
            .into_iter()
            .map(|(mut st, rx, n)| {
                // Beyond-deadline stragglers stay scheduled for the
                // next run; every sender has exited, so the drain is
                // exhaustive.
                while let Ok(ev) = rx.try_recv() {
                    st.heap.push(ev);
                }
                total += n;
                max_now = max_now.max(st.now);
                st
            })
            .collect();
        self.part = Some(part);
        let pending = self.shards.iter().any(|st| !st.heap.is_empty());
        self.now = if pending { deadline } else { max_now };
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Area;
    use crate::radio::RadioModel;
    use crate::sim::{NetApp, SimConfig, Simulator};

    /// Receipt of one delivered message: total-order key, receiver,
    /// sender, payload, arrival time.
    type Receipt = ((SimTime, u32, u64), NodeId, NodeId, u32, SimTime);

    /// A TTL-bounded flood: the timer broadcasts 0, every receipt below
    /// the TTL rebroadcasts `msg + 1`. Generates heavy cross-shard
    /// traffic on a line topology.
    #[derive(Clone, Default)]
    struct Flood {
        ttl: u32,
        received: Vec<Receipt>,
    }

    impl NetApp<u32> for Flood {
        fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, at: NodeId, from: NodeId, msg: &u32) {
            self.received
                .push((ctx.order_key(), at, from, *msg, ctx.now));
            if *msg < self.ttl {
                ctx.broadcast(at, 64, *msg + 1);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, u32>, at: NodeId, _token: u64) {
            ctx.broadcast(at, 64, 0);
        }
    }

    fn line_config(seed: u64) -> SimConfig {
        SimConfig {
            area: Area::new(2000.0, 200.0),
            radio: RadioModel::default(),
            seed,
            ..Default::default()
        }
    }

    const N: usize = 16;
    const DEADLINE: SimTime = SimTime(1_000_000);

    /// Line of N static nodes, 30 m apart (range 50 m → each node hears
    /// its immediate neighbours only), flood kicked off in the middle.
    fn seq_run(seed: u64, ttl: u32) -> (Simulator<u32>, Flood, u64) {
        let mut sim = Simulator::new(line_config(seed));
        for i in 0..N {
            sim.add_node(Point::new(30.0 * i as f64, 100.0), Mobility::Static);
        }
        sim.schedule_timer(NodeId(N as u32 / 2), SimDuration::millis(1), 1);
        let mut app = Flood {
            ttl,
            ..Default::default()
        };
        let n = sim.run_until(&mut app, DEADLINE);
        (sim, app, n)
    }

    fn sharded_run(
        seed: u64,
        ttl: u32,
        workers: usize,
    ) -> (ShardedSimulator<u32>, Vec<Flood>, u64) {
        let mut sim = ShardedSimulator::new(line_config(seed), workers);
        for i in 0..N {
            sim.add_node(Point::new(30.0 * i as f64, 100.0), Mobility::Static);
        }
        sim.schedule_timer(NodeId(N as u32 / 2), SimDuration::millis(1), 1);
        let mut apps = vec![
            Flood {
                ttl,
                ..Default::default()
            };
            sim.shard_count()
        ];
        let n = sim.run_until(&mut apps, DEADLINE);
        (sim, apps, n)
    }

    fn merged_receipts(apps: &[Flood]) -> Vec<Receipt> {
        let mut all: Vec<Receipt> = apps.iter().flat_map(|a| a.received.clone()).collect();
        all.sort();
        all
    }

    /// Receipts stripped of the partition-dependent key, in a canonical
    /// order — comparable across different shard counts.
    fn keyless(receipts: &[Receipt]) -> Vec<(SimTime, NodeId, NodeId, u32)> {
        let mut out: Vec<_> = receipts
            .iter()
            .map(|&(_, at, from, msg, now)| (now, at, from, msg))
            .collect();
        out.sort();
        out
    }

    #[test]
    fn one_worker_is_bit_equal_to_sequential() {
        let (seq_sim, seq_app, seq_n) = seq_run(7, 3);
        let (mut sh_sim, sh_apps, sh_n) = sharded_run(7, 3, 1);
        assert_eq!(sh_apps.len(), 1);
        // Same events, same keys, same order, same draws, same clock.
        assert_eq!(seq_app.received, sh_apps[0].received);
        assert_eq!(seq_n, sh_n);
        assert_eq!(seq_sim.now(), sh_sim.now());
        assert_eq!(*seq_sim.stats(), sh_sim.stats());
        for i in 0..N as u32 {
            assert_eq!(sh_sim.shard_of(NodeId(i)), 0);
        }
    }

    #[test]
    fn multi_worker_parallel_matches_sequential_outcome() {
        let (seq_sim, seq_app, seq_n) = seq_run(11, 3);
        for workers in [2, 4] {
            let (sh_sim, sh_apps, sh_n) = sharded_run(11, 3, workers);
            assert_eq!(sh_apps.len(), workers);
            assert_eq!(
                keyless(&seq_app.received),
                keyless(&merged_receipts(&sh_apps))
            );
            assert_eq!(seq_n, sh_n, "workers={workers}");
            assert_eq!(seq_sim.now(), sh_sim.now());
            assert_eq!(*seq_sim.stats(), sh_sim.stats());
        }
    }

    #[test]
    fn parallel_runs_are_reproducible() {
        let (_, apps_a, n_a) = sharded_run(23, 3, 4);
        let (_, apps_b, n_b) = sharded_run(23, 3, 4);
        // Same partition → keys comparable: full bit-equality.
        assert_eq!(merged_receipts(&apps_a), merged_receipts(&apps_b));
        assert_eq!(n_a, n_b);
    }

    #[test]
    fn partition_is_spatially_contiguous() {
        let (mut sim, _, _) = sharded_run(1, 0, 4);
        assert_eq!(sim.shard_count(), 4);
        // On a line sorted by x, shard ids must be monotone in x.
        let shards: Vec<usize> = (0..N as u32).map(|i| sim.shard_of(NodeId(i))).collect();
        let mut sorted = shards.clone();
        sorted.sort_unstable();
        assert_eq!(shards, sorted);
        assert_eq!(shards[0], 0);
        assert_eq!(shards[N - 1], 3);
    }

    #[test]
    fn chunked_runs_match_one_shot_run() {
        // Split the same flood across several deadlines: stragglers
        // drained after a parallel run must stay scheduled.
        let (_, one_shot, n_one) = sharded_run(31, 3, 4);
        let mut sim = ShardedSimulator::new(line_config(31), 4);
        for i in 0..N {
            sim.add_node(Point::new(30.0 * i as f64, 100.0), Mobility::Static);
        }
        sim.schedule_timer(NodeId(N as u32 / 2), SimDuration::millis(1), 1);
        let mut apps = vec![
            Flood {
                ttl: 3,
                ..Default::default()
            };
            sim.shard_count()
        ];
        let mut n_chunked = 0;
        for stop_ms in [2, 4, 5, 7, 1000] {
            n_chunked += sim.run_until(&mut apps, SimTime(stop_ms * 1000));
        }
        assert_eq!(merged_receipts(&one_shot), merged_receipts(&apps));
        assert_eq!(n_one, n_chunked);
    }

    #[test]
    fn pending_down_events_run_on_the_merged_path_and_match_sequential() {
        let build = |seed| {
            let mut sim = Simulator::new(line_config(seed));
            for i in 0..N {
                sim.add_node(Point::new(30.0 * i as f64, 100.0), Mobility::Static);
            }
            sim
        };
        let mut seq = build(5);
        seq.schedule_down(NodeId(6), SimDuration::micros(2_500));
        seq.schedule_up(NodeId(6), SimDuration::millis(20));
        seq.schedule_timer(NodeId(8), SimDuration::millis(1), 1);
        let mut seq_app = Flood {
            ttl: 4,
            ..Default::default()
        };
        let seq_n = seq.run_until(&mut seq_app, DEADLINE);

        let mut sh = ShardedSimulator::new(line_config(5), 4);
        for i in 0..N {
            sh.add_node(Point::new(30.0 * i as f64, 100.0), Mobility::Static);
        }
        sh.schedule_down(NodeId(6), SimDuration::micros(2_500));
        sh.schedule_up(NodeId(6), SimDuration::millis(20));
        sh.schedule_timer(NodeId(8), SimDuration::millis(1), 1);
        let mut apps = vec![
            Flood {
                ttl: 4,
                ..Default::default()
            };
            sh.shard_count()
        ];
        let sh_n = sh.run_until(&mut apps, DEADLINE);
        assert_eq!(keyless(&seq_app.received), keyless(&merged_receipts(&apps)));
        assert_eq!(seq_n, sh_n);
        assert_eq!(*seq.stats(), sh.stats());
    }

    #[test]
    fn fault_plan_outcome_is_worker_count_independent() {
        let plan = FaultPlan {
            drop_prob: 0.2,
            duplicate_prob: 0.1,
            ..FaultPlan::sampled(99)
        };
        let run = |workers: usize| {
            let mut sim = ShardedSimulator::new(line_config(13), workers);
            for i in 0..N {
                sim.add_node(Point::new(30.0 * i as f64, 100.0), Mobility::Static);
            }
            sim.set_fault_plan(plan);
            sim.schedule_timer(NodeId(N as u32 / 2), SimDuration::millis(1), 1);
            let mut apps = vec![
                Flood {
                    ttl: 3,
                    ..Default::default()
                };
                sim.shard_count()
            ];
            let n = sim.run_until(&mut apps, DEADLINE);
            (keyless(&merged_receipts(&apps)), n, sim.stats())
        };
        // Per-node fault samplers make the fault pattern a function of
        // (plan seed, node id) — identical at any worker count.
        let (r1, n1, s1) = run(1);
        let (r4, n4, s4) = run(4);
        assert_eq!(r1, r4);
        assert_eq!(n1, n4);
        assert_eq!(s1, s4);
        assert!(s1.faults_dropped > 0 || s1.faults_duplicated > 0);
    }

    #[test]
    fn zero_lookahead_falls_back_to_merged_path() {
        let cfg = SimConfig {
            area: Area::new(2000.0, 200.0),
            radio: RadioModel::instant(),
            seed: 3,
            ..Default::default()
        };
        let mut sim = ShardedSimulator::new(cfg, 4);
        for i in 0..N {
            sim.add_node(Point::new(30.0 * i as f64, 100.0), Mobility::Static);
        }
        sim.schedule_timer(NodeId(0), SimDuration::millis(1), 1);
        assert!(!sim.parallel_eligible() || sim.part.is_none());
        let mut apps = vec![
            Flood {
                ttl: 2,
                ..Default::default()
            };
            sim.shard_count()
        ];
        let n = sim.run_until(&mut apps, DEADLINE);
        assert!(n > 0);
        assert!(!sim.parallel_eligible());
    }

    #[test]
    fn mobility_falls_back_to_merged_path_and_matches_sequential() {
        let run_seq = |seed| {
            let mut sim = Simulator::new(line_config(seed));
            for _ in 0..N {
                sim.add_node_random(Mobility::RandomWaypoint {
                    min_speed: 1.0,
                    max_speed: 2.0,
                    pause: SimDuration::millis(50),
                });
            }
            sim.schedule_timer(NodeId(0), SimDuration::millis(1), 1);
            let mut app = Flood {
                ttl: 2,
                ..Default::default()
            };
            let n = sim.run_until(&mut app, SimTime(400_000));
            (keyless(&app.received), n, sim.stats().clone())
        };
        let run_sh = |seed| {
            let mut sim = ShardedSimulator::new(line_config(seed), 4);
            for _ in 0..N {
                sim.add_node_random(Mobility::RandomWaypoint {
                    min_speed: 1.0,
                    max_speed: 2.0,
                    pause: SimDuration::millis(50),
                });
            }
            sim.schedule_timer(NodeId(0), SimDuration::millis(1), 1);
            let mut apps = vec![
                Flood {
                    ttl: 2,
                    ..Default::default()
                };
                sim.shard_count()
            ];
            let n = sim.run_until(&mut apps, SimTime(400_000));
            (keyless(&merged_receipts(&apps)), n, sim.stats())
        };
        let (ra, na, sa) = run_seq(17);
        let (rb, nb, sb) = run_sh(17);
        assert_eq!(ra, rb);
        assert_eq!(na, nb);
        assert_eq!(sa, sb);
    }
}
