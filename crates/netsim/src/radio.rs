//! Radio propagation and link model.
//!
//! The unit-disc model is the standard abstraction for protocol-level
//! ad-hoc studies: two nodes share a link iff their distance is within the
//! radio range. On top of the disc we model what the negotiation protocol
//! actually observes — per-message latency (propagation + serialisation
//! over a shared-medium bitrate) and an optional distance-dependent loss
//! probability (grey zone near the range edge).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Radio and medium parameters shared by all nodes of a simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadioModel {
    /// Disc radius in metres.
    pub range_m: f64,
    /// Link bitrate in kbit/s (802.11b-era defaults ≈ 11_000).
    pub bitrate_kbps: f64,
    /// Fixed per-message medium-access + propagation latency.
    pub base_latency: SimDuration,
    /// Loss probability at zero distance (link-layer floor).
    pub loss_floor: f64,
    /// Additional loss probability ramped linearly from `grey_zone_start ×
    /// range` to the full range (edge-of-range unreliability). 0 disables.
    pub loss_at_edge: f64,
    /// Fraction of the range where the grey zone begins (0..1).
    pub grey_zone_start: f64,
}

impl Default for RadioModel {
    fn default() -> Self {
        Self {
            range_m: 50.0,
            bitrate_kbps: 11_000.0,
            base_latency: SimDuration::millis(2),
            loss_floor: 0.0,
            loss_at_edge: 0.0,
            grey_zone_start: 0.8,
        }
    }
}

impl RadioModel {
    /// A zero-latency, lossless radio: every message arrives at its send
    /// timestamp. This is the DES configuration whose event order is
    /// pinned against the in-memory direct runtime by the cross-backend
    /// equivalence test.
    pub fn instant() -> Self {
        Self {
            bitrate_kbps: f64::INFINITY,
            base_latency: SimDuration::ZERO,
            loss_floor: 0.0,
            loss_at_edge: 0.0,
            ..Default::default()
        }
    }

    /// True if two nodes at distance `d` share a link.
    pub fn in_range(&self, d: f64) -> bool {
        d <= self.range_m
    }

    /// Transmission latency of a `bytes`-long message: base latency plus
    /// serialisation time at the configured bitrate.
    pub fn latency(&self, bytes: u64) -> SimDuration {
        let ser_s = (bytes as f64 * 8.0) / (self.bitrate_kbps * 1000.0);
        self.base_latency + SimDuration::secs_f64(ser_s)
    }

    /// Loss probability of a message over a link of distance `d`
    /// (assumed already in range).
    pub fn loss_probability(&self, d: f64) -> f64 {
        let mut p = self.loss_floor;
        let grey_start = self.grey_zone_start * self.range_m;
        if self.loss_at_edge > 0.0 && d > grey_start && self.range_m > grey_start {
            let t = (d - grey_start) / (self.range_m - grey_start);
            p += self.loss_at_edge * t.clamp(0.0, 1.0);
        }
        p.clamp(0.0, 1.0)
    }

    /// Samples whether a message at distance `d` is lost.
    pub fn drops(&self, d: f64, rng: &mut impl Rng) -> bool {
        let p = self.loss_probability(d);
        p > 0.0 && rng.gen_bool(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn disc_membership() {
        let r = RadioModel {
            range_m: 50.0,
            ..Default::default()
        };
        assert!(r.in_range(50.0));
        assert!(!r.in_range(50.01));
    }

    #[test]
    fn latency_scales_with_size() {
        let r = RadioModel {
            bitrate_kbps: 8_000.0, // 1 MB/s
            base_latency: SimDuration::millis(1),
            ..Default::default()
        };
        // 1000 bytes at 1 MB/s = 1 ms serialisation + 1 ms base.
        assert_eq!(r.latency(1000), SimDuration::millis(2));
        assert!(r.latency(10_000) > r.latency(1000));
        assert_eq!(r.latency(0), SimDuration::millis(1));
    }

    #[test]
    fn loss_ramp_in_grey_zone() {
        let r = RadioModel {
            range_m: 100.0,
            loss_floor: 0.05,
            loss_at_edge: 0.4,
            grey_zone_start: 0.8,
            ..Default::default()
        };
        assert!((r.loss_probability(10.0) - 0.05).abs() < 1e-12);
        assert!((r.loss_probability(80.0) - 0.05).abs() < 1e-12);
        assert!((r.loss_probability(90.0) - 0.25).abs() < 1e-12);
        assert!((r.loss_probability(100.0) - 0.45).abs() < 1e-12);
    }

    #[test]
    fn instant_radio_has_zero_latency_and_loss() {
        let r = RadioModel::instant();
        assert_eq!(r.latency(0), SimDuration::ZERO);
        assert_eq!(r.latency(1_000_000), SimDuration::ZERO);
        assert_eq!(r.loss_probability(r.range_m), 0.0);
    }

    #[test]
    fn zero_loss_never_drops() {
        let r = RadioModel::default();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!r.drops(49.0, &mut rng));
        }
    }

    #[test]
    fn certain_loss_always_drops() {
        let r = RadioModel {
            loss_floor: 1.0,
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(r.drops(1.0, &mut rng));
    }
}
