//! The fault vocabulary shared by every backend.
//!
//! A [`FaultPlan`] names the message-level and node-level faults a run is
//! allowed to experience: message drop, message duplication, message
//! reorder (extra delivery latency), and provider crash-restart mid-CFP.
//! The same plan drives two very different consumers:
//!
//! * the **model checker** (`qosc-mc`) treats the `max_*` budgets as
//!   branching bounds — at every deliverable message it forks the
//!   exploration into deliver / drop / duplicate branches while budget
//!   remains (reorder needs no budget there: the explorer already visits
//!   every delivery order);
//! * the **sampled backends** (DES simulator, direct runtime) draw faults
//!   probabilistically through a [`FaultSampler`], seeded separately from
//!   the radio RNG so that enabling faults perturbs nothing else and a
//!   plan with all probabilities zero is bit-identical to no plan at all.
//!
//! Keeping one vocabulary means a schedule the checker proves safe on a
//! small instance and a seeded 200-node run inject the *same kind* of
//! adversity, differing only in exhaustiveness.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::time::SimDuration;

/// Declarative description of the faults a run may inject.
///
/// Budgets (`max_*`) cap the *total* number of faults of each kind over
/// the whole run; probabilities govern how eagerly the sampled backends
/// spend those budgets. The model checker ignores the probabilities and
/// branches over every way of spending the budgets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Maximum number of message drops.
    pub max_drops: u32,
    /// Maximum number of message duplications.
    pub max_duplicates: u32,
    /// Maximum number of provider crash-restarts.
    pub max_crash_restarts: u32,
    /// Per-delivery drop probability on sampled backends.
    pub drop_prob: f64,
    /// Per-delivery duplication probability on sampled backends.
    pub duplicate_prob: f64,
    /// Per-delivery reorder probability on sampled backends.
    pub reorder_prob: f64,
    /// Extra latency added to a reordered delivery (uniform in
    /// `0..=reorder_jitter`).
    pub reorder_jitter: SimDuration,
    /// Seed for the dedicated fault RNG; independent of the radio seed.
    pub seed: u64,
}

impl FaultPlan {
    /// The empty plan: no faults of any kind.
    pub fn none() -> Self {
        Self {
            max_drops: 0,
            max_duplicates: 0,
            max_crash_restarts: 0,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            reorder_prob: 0.0,
            reorder_jitter: SimDuration::ZERO,
            seed: 0,
        }
    }

    /// Budget-only plan for exhaustive exploration: up to `drops` message
    /// drops and `duplicates` duplications, no probabilistic sampling.
    pub fn exhaustive(drops: u32, duplicates: u32) -> Self {
        Self {
            max_drops: drops,
            max_duplicates: duplicates,
            ..Self::none()
        }
    }

    /// Probability-driven plan for sampled backends with unlimited
    /// budgets. Combine with [`FaultPlan::with_drop`],
    /// [`FaultPlan::with_duplicate`] and [`FaultPlan::with_reorder`].
    pub fn sampled(seed: u64) -> Self {
        Self {
            max_drops: u32::MAX,
            max_duplicates: u32::MAX,
            max_crash_restarts: 0,
            seed,
            ..Self::none()
        }
    }

    /// Sets the per-delivery drop probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Sets the per-delivery duplication probability.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate_prob = p;
        self
    }

    /// Sets the per-delivery reorder probability and jitter bound.
    pub fn with_reorder(mut self, p: f64, jitter: SimDuration) -> Self {
        self.reorder_prob = p;
        self.reorder_jitter = jitter;
        self
    }

    /// Sets the crash-restart budget (explored by the model checker).
    pub fn with_crash_restarts(mut self, n: u32) -> Self {
        self.max_crash_restarts = n;
        self
    }

    /// Whether this plan names no faults at all — no budgets for the
    /// model checker to branch over, no probabilities for a sampler.
    pub fn is_none(&self) -> bool {
        self.max_drops == 0
            && self.max_duplicates == 0
            && self.max_crash_restarts == 0
            && self.drop_prob == 0.0
            && self.duplicate_prob == 0.0
            && self.reorder_prob == 0.0
    }

    /// Whether the plan is meaningful for a *sampled* backend: at least
    /// one probability is positive with budget to spend.
    pub fn samples_anything(&self) -> bool {
        (self.drop_prob > 0.0 && self.max_drops > 0)
            || (self.duplicate_prob > 0.0 && self.max_duplicates > 0)
            || self.reorder_prob > 0.0
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// Outcome of one sampled delivery decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryFault {
    /// Deliver the message normally.
    None,
    /// Drop the message.
    Drop,
    /// Deliver the message twice.
    Duplicate,
}

/// Draws faults for a sampled backend according to a [`FaultPlan`].
///
/// Owns a dedicated `ChaCha8Rng` seeded from `plan.seed`, so fault draws
/// never perturb the backend's own randomness: two runs with the same
/// seeds are bit-identical whether or not a plan is installed, and a plan
/// that samples nothing consumes no randomness at all.
#[derive(Debug, Clone)]
pub struct FaultSampler {
    plan: FaultPlan,
    rng: ChaCha8Rng,
    drops_done: u32,
    duplicates_done: u32,
}

impl FaultSampler {
    /// Creates a sampler for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            rng: ChaCha8Rng::seed_from_u64(plan.seed),
            drops_done: 0,
            duplicates_done: 0,
        }
    }

    /// Creates the per-node sampler stream for `node`: seeded from
    /// `(plan.seed, node)` so each node draws an independent fault
    /// stream regardless of how deliveries interleave across nodes.
    /// Budgets (`max_*`) apply per stream. This is what the sharded
    /// simulator (and, since the per-node RNG split, the sequential one)
    /// uses so fault sampling is deterministic per node.
    pub fn for_node(plan: FaultPlan, node: u32) -> Self {
        Self {
            plan,
            rng: ChaCha8Rng::seed_from_u64(crate::sim::node_stream_seed(plan.seed, node)),
            drops_done: 0,
            duplicates_done: 0,
        }
    }

    /// The plan this sampler draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decides the fate of one delivery: drop, duplicate, or deliver.
    /// Budgets are enforced; exhausted kinds are never drawn again.
    pub fn on_delivery(&mut self) -> DeliveryFault {
        if self.plan.drop_prob > 0.0
            && self.drops_done < self.plan.max_drops
            && self.rng.gen_bool(self.plan.drop_prob)
        {
            self.drops_done += 1;
            return DeliveryFault::Drop;
        }
        if self.plan.duplicate_prob > 0.0
            && self.duplicates_done < self.plan.max_duplicates
            && self.rng.gen_bool(self.plan.duplicate_prob)
        {
            self.duplicates_done += 1;
            return DeliveryFault::Duplicate;
        }
        DeliveryFault::None
    }

    /// Draws reorder jitter for one delivery copy: `Some(extra_latency)`
    /// with probability `reorder_prob`, `None` otherwise.
    pub fn reorder(&mut self) -> Option<SimDuration> {
        if self.plan.reorder_prob > 0.0 && self.rng.gen_bool(self.plan.reorder_prob) {
            let span = self.plan.reorder_jitter.as_micros();
            if span == 0 {
                return None;
            }
            return Some(SimDuration::micros(self.rng.gen_range(1..=span)));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_none() {
        assert!(FaultPlan::none().is_none());
        assert!(!FaultPlan::none().samples_anything());
        assert!(!FaultPlan::exhaustive(1, 1).samples_anything());
    }

    #[test]
    fn sampled_plan_samples() {
        let p = FaultPlan::sampled(7).with_drop(0.5);
        assert!(p.samples_anything());
        assert!(!p.is_none());
    }

    #[test]
    fn sampler_is_deterministic() {
        let plan = FaultPlan::sampled(42)
            .with_drop(0.3)
            .with_duplicate(0.3)
            .with_reorder(0.3, SimDuration::millis(5));
        let draw = |mut s: FaultSampler| {
            (0..200)
                .map(|_| (s.on_delivery(), s.reorder()))
                .collect::<Vec<_>>()
        };
        let a = draw(FaultSampler::new(plan));
        let b = draw(FaultSampler::new(plan));
        assert_eq!(a, b);
        assert!(a.iter().any(|(f, _)| *f == DeliveryFault::Drop));
        assert!(a.iter().any(|(f, _)| *f == DeliveryFault::Duplicate));
        assert!(a.iter().any(|(_, r)| r.is_some()));
    }

    #[test]
    fn budgets_cap_sampled_faults() {
        let plan = FaultPlan {
            max_drops: 3,
            max_duplicates: 2,
            drop_prob: 1.0,
            duplicate_prob: 1.0,
            ..FaultPlan::none()
        };
        let mut s = FaultSampler::new(plan);
        let faults: Vec<_> = (0..10).map(|_| s.on_delivery()).collect();
        let drops = faults.iter().filter(|f| **f == DeliveryFault::Drop).count();
        let dups = faults
            .iter()
            .filter(|f| **f == DeliveryFault::Duplicate)
            .count();
        assert_eq!(drops, 3);
        assert_eq!(dups, 2);
        assert!(faults[5..].iter().all(|f| *f == DeliveryFault::None));
    }
}
