//! The fault vocabulary shared by every backend.
//!
//! Two declarative plans cover the full adversity vocabulary:
//!
//! * a [`FaultPlan`] names the **message- and node-level** faults a run
//!   may experience — message drop, message duplication, message reorder
//!   (extra delivery latency), and provider crash-restart mid-CFP;
//! * a [`PartitionPlan`] names the **link-level** faults: timed
//!   [`PartitionEvent::Partition`] / [`PartitionEvent::Heal`] events that
//!   split the node population into groups with no connectivity between
//!   them, either scripted explicitly or sampled (random bisections with
//!   exponentially distributed partition/heal durations drawn from the
//!   plan's dedicated RNG).
//!
//! The same plans drive two very different consumers:
//!
//! * the **model checker** (`qosc-mc`) treats the `max_*` budgets as
//!   branching bounds — at every deliverable message it forks the
//!   exploration into deliver / drop / duplicate branches while budget
//!   remains (reorder needs no budget there: the explorer already visits
//!   every delivery order), and branches partition/heal transitions under
//!   the [`FaultPlan::max_partitions`] budget;
//! * the **sampled backends** (DES simulator, sharded DES, direct
//!   runtime) draw message faults probabilistically through a
//!   [`FaultSampler`], seeded separately from the radio RNG so that
//!   enabling faults perturbs nothing else, and enforce partitions at
//!   delivery time through a pre-expanded [`PartitionTimeline`] — a pure
//!   timestamp lookup that consumes no randomness, so a plan that cuts
//!   nothing is bit-identical to no plan at all.
//!
//! Keeping one vocabulary means a schedule the checker proves safe on a
//! small instance and a seeded 200-node run inject the *same kind* of
//! adversity, differing only in exhaustiveness.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::time::{SimDuration, SimTime};

/// Declarative description of the faults a run may inject.
///
/// Budgets (`max_*`) cap the *total* number of faults of each kind over
/// the whole run; probabilities govern how eagerly the sampled backends
/// spend those budgets. The model checker ignores the probabilities and
/// branches over every way of spending the budgets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Maximum number of message drops.
    pub max_drops: u32,
    /// Maximum number of message duplications.
    pub max_duplicates: u32,
    /// Maximum number of provider crash-restarts.
    pub max_crash_restarts: u32,
    /// Per-delivery drop probability on sampled backends.
    pub drop_prob: f64,
    /// Per-delivery duplication probability on sampled backends.
    pub duplicate_prob: f64,
    /// Maximum number of message reorders.
    pub max_reorders: u32,
    /// Maximum number of partition/heal cycles the model checker may
    /// branch over. Sampled backends ignore this: they take their link
    /// cuts from a [`PartitionPlan`] instead.
    pub max_partitions: u32,
    /// Per-delivery reorder probability on sampled backends.
    pub reorder_prob: f64,
    /// Extra latency added to a reordered delivery (uniform in
    /// `0..=reorder_jitter`).
    pub reorder_jitter: SimDuration,
    /// Seed for the dedicated fault RNG; independent of the radio seed.
    pub seed: u64,
}

impl FaultPlan {
    /// The empty plan: no faults of any kind.
    pub fn none() -> Self {
        Self {
            max_drops: 0,
            max_duplicates: 0,
            max_crash_restarts: 0,
            max_reorders: 0,
            max_partitions: 0,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            reorder_prob: 0.0,
            reorder_jitter: SimDuration::ZERO,
            seed: 0,
        }
    }

    /// Budget-only plan for exhaustive exploration: up to `drops` message
    /// drops and `duplicates` duplications, no probabilistic sampling.
    pub fn exhaustive(drops: u32, duplicates: u32) -> Self {
        Self {
            max_drops: drops,
            max_duplicates: duplicates,
            ..Self::none()
        }
    }

    /// Probability-driven plan for sampled backends with unlimited
    /// budgets. Combine with [`FaultPlan::with_drop`],
    /// [`FaultPlan::with_duplicate`] and [`FaultPlan::with_reorder`].
    pub fn sampled(seed: u64) -> Self {
        Self {
            max_drops: u32::MAX,
            max_duplicates: u32::MAX,
            max_crash_restarts: 0,
            max_reorders: u32::MAX,
            seed,
            ..Self::none()
        }
    }

    /// Sets the per-delivery drop probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Sets the per-delivery duplication probability.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate_prob = p;
        self
    }

    /// Sets the per-delivery reorder probability and jitter bound.
    ///
    /// A zero `jitter` with a positive `p` is a no-op: the sampler never
    /// draws for reorder (no randomness is consumed) and
    /// [`FaultPlan::samples_anything`] ignores the reorder term, so the
    /// plan behaves exactly as if `p` were zero. Debug builds assert
    /// against the combination since it almost certainly means the caller
    /// forgot the jitter bound.
    pub fn with_reorder(mut self, p: f64, jitter: SimDuration) -> Self {
        debug_assert!(
            p <= 0.0 || jitter > SimDuration::ZERO,
            "with_reorder: positive reorder_prob with zero jitter never reorders"
        );
        self.reorder_prob = p;
        self.reorder_jitter = jitter;
        self
    }

    /// Caps the total number of reordered deliveries per sampler stream.
    pub fn with_max_reorders(mut self, n: u32) -> Self {
        self.max_reorders = n;
        self
    }

    /// Sets the crash-restart budget (explored by the model checker).
    pub fn with_crash_restarts(mut self, n: u32) -> Self {
        self.max_crash_restarts = n;
        self
    }

    /// Sets the partition/heal budget (explored by the model checker).
    pub fn with_partitions(mut self, n: u32) -> Self {
        self.max_partitions = n;
        self
    }

    /// Whether this plan names no faults at all — no budgets for the
    /// model checker to branch over, no probabilities for a sampler.
    pub fn is_none(&self) -> bool {
        self.max_drops == 0
            && self.max_duplicates == 0
            && self.max_crash_restarts == 0
            && self.max_reorders == 0
            && self.max_partitions == 0
            && self.drop_prob == 0.0
            && self.duplicate_prob == 0.0
            && self.reorder_prob == 0.0
    }

    /// Whether the plan is meaningful for a *sampled* backend: at least
    /// one probability is positive with budget to spend. Reorder
    /// additionally needs a positive jitter bound — zero jitter cannot
    /// displace a delivery, so it counts as sampling nothing.
    pub fn samples_anything(&self) -> bool {
        (self.drop_prob > 0.0 && self.max_drops > 0)
            || (self.duplicate_prob > 0.0 && self.max_duplicates > 0)
            || (self.reorder_prob > 0.0
                && self.max_reorders > 0
                && self.reorder_jitter > SimDuration::ZERO)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// Outcome of one sampled delivery decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryFault {
    /// Deliver the message normally.
    None,
    /// Drop the message.
    Drop,
    /// Deliver the message twice.
    Duplicate,
}

/// Draws faults for a sampled backend according to a [`FaultPlan`].
///
/// Owns a dedicated `ChaCha8Rng` seeded from `plan.seed`, so fault draws
/// never perturb the backend's own randomness: two runs with the same
/// seeds are bit-identical whether or not a plan is installed, and a plan
/// that samples nothing consumes no randomness at all.
#[derive(Debug, Clone)]
pub struct FaultSampler {
    plan: FaultPlan,
    rng: ChaCha8Rng,
    drops_done: u32,
    duplicates_done: u32,
    reorders_done: u32,
}

impl FaultSampler {
    /// Creates a sampler for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            rng: ChaCha8Rng::seed_from_u64(plan.seed),
            drops_done: 0,
            duplicates_done: 0,
            reorders_done: 0,
        }
    }

    /// Creates the per-node sampler stream for `node`: seeded from
    /// `(plan.seed, node)` so each node draws an independent fault
    /// stream regardless of how deliveries interleave across nodes.
    /// Budgets (`max_*`) apply per stream. This is what the sharded
    /// simulator (and, since the per-node RNG split, the sequential one)
    /// uses so fault sampling is deterministic per node.
    pub fn for_node(plan: FaultPlan, node: u32) -> Self {
        Self {
            plan,
            rng: ChaCha8Rng::seed_from_u64(crate::sim::node_stream_seed(plan.seed, node)),
            drops_done: 0,
            duplicates_done: 0,
            reorders_done: 0,
        }
    }

    /// The plan this sampler draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decides the fate of one delivery: drop, duplicate, or deliver.
    /// Budgets are enforced; exhausted kinds are never drawn again.
    pub fn on_delivery(&mut self) -> DeliveryFault {
        if self.plan.drop_prob > 0.0
            && self.drops_done < self.plan.max_drops
            && self.rng.gen_bool(self.plan.drop_prob)
        {
            self.drops_done += 1;
            return DeliveryFault::Drop;
        }
        if self.plan.duplicate_prob > 0.0
            && self.duplicates_done < self.plan.max_duplicates
            && self.rng.gen_bool(self.plan.duplicate_prob)
        {
            self.duplicates_done += 1;
            return DeliveryFault::Duplicate;
        }
        DeliveryFault::None
    }

    /// Draws reorder jitter for one delivery copy: `Some(extra_latency)`
    /// with probability `reorder_prob`, `None` otherwise. Enforces
    /// `max_reorders`; a zero jitter bound is a no-op that consumes no
    /// randomness (see [`FaultPlan::with_reorder`]).
    pub fn reorder(&mut self) -> Option<SimDuration> {
        let span = self.plan.reorder_jitter.as_micros();
        if span == 0
            || self.plan.reorder_prob <= 0.0
            || self.reorders_done >= self.plan.max_reorders
        {
            return None;
        }
        if self.rng.gen_bool(self.plan.reorder_prob) {
            self.reorders_done += 1;
            return Some(SimDuration::micros(self.rng.gen_range(1..=span)));
        }
        None
    }
}

/// One timed change of network connectivity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionEvent {
    /// At `at`, split the network into `groups`: nodes in different
    /// groups cannot exchange messages until the next event. Nodes not
    /// named by any group stay reachable from everyone.
    Partition {
        /// Time the partition takes effect.
        at: SimTime,
        /// Disjoint node groups; links inside a group stay up.
        groups: Vec<Vec<u32>>,
    },
    /// At `at`, restore full connectivity.
    Heal {
        /// Time the heal takes effect.
        at: SimTime,
    },
}

impl PartitionEvent {
    fn at(&self) -> SimTime {
        match self {
            PartitionEvent::Partition { at, .. } | PartitionEvent::Heal { at } => *at,
        }
    }
}

/// Declarative schedule of link-level partitions.
///
/// Two sources of events, freely combined:
///
/// * **scripted** — explicit [`PartitionEvent`]s added with
///   [`PartitionPlan::partition_at`] / [`PartitionPlan::heal_at`];
/// * **sampled** — [`PartitionPlan::sampled`] draws `cycles` random
///   bisections with exponentially distributed partition and heal
///   durations from a dedicated RNG seeded by the plan (independent of
///   the radio and message-fault seeds).
///
/// A plan is expanded once, against a fixed node count, into a
/// [`PartitionTimeline`] that every backend consults at delivery time.
/// Because the expansion happens up front and the per-delivery check is
/// a pure timestamp lookup, installing a plan consumes no randomness
/// during the run: the sequential DES, the sharded DES, and the direct
/// runtime cut exactly the same links on the same draws.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PartitionPlan {
    /// Explicitly scripted events.
    pub events: Vec<PartitionEvent>,
    /// Sampled-bisection spec, if any.
    pub sampled: Option<SampledPartitions>,
}

/// Spec for randomly sampled partition/heal cycles: repeated random
/// bisections with exponential durations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledPartitions {
    /// Seed for the dedicated partition RNG.
    pub seed: u64,
    /// Mean partition duration (exponentially distributed).
    pub mean_partition: SimDuration,
    /// Mean healed gap before and between partitions (exponentially
    /// distributed).
    pub mean_heal: SimDuration,
    /// Number of partition/heal cycles to draw.
    pub cycles: u32,
}

impl PartitionPlan {
    /// The empty plan: the network never partitions.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan schedules no connectivity changes at all.
    pub fn is_none(&self) -> bool {
        self.events.is_empty() && self.sampled.is_none_or(|s| s.cycles == 0)
    }

    /// Adds a scripted partition into `groups` at `at`.
    pub fn partition_at(mut self, at: SimTime, groups: Vec<Vec<u32>>) -> Self {
        self.events.push(PartitionEvent::Partition { at, groups });
        self
    }

    /// Adds a scripted heal at `at`.
    pub fn heal_at(mut self, at: SimTime) -> Self {
        self.events.push(PartitionEvent::Heal { at });
        self
    }

    /// A purely sampled plan: starting healed, draw a healed gap
    /// (exponential with mean `mean_heal`), then a random bisection held
    /// for an exponential duration with mean `mean_partition`, repeated
    /// for `cycles` partitions.
    pub fn sampled(
        seed: u64,
        mean_partition: SimDuration,
        mean_heal: SimDuration,
        cycles: u32,
    ) -> Self {
        Self {
            events: Vec::new(),
            sampled: Some(SampledPartitions {
                seed,
                mean_partition,
                mean_heal,
                cycles,
            }),
        }
    }

    /// Expands the plan against a fixed population of `node_count` nodes
    /// into the timeline the backends consult at delivery time. The
    /// expansion is deterministic in `(plan, node_count)`; install the
    /// plan only after every node has been added so all backends expand
    /// against the same count.
    pub fn expand(&self, node_count: usize) -> PartitionTimeline {
        let width = self
            .events
            .iter()
            .filter_map(|e| match e {
                PartitionEvent::Partition { groups, .. } => {
                    groups.iter().flatten().max().map(|&n| n as usize + 1)
                }
                PartitionEvent::Heal { .. } => None,
            })
            .max()
            .unwrap_or(0)
            .max(node_count);
        let mut changes: Vec<(SimTime, Option<Vec<Option<u32>>>)> = Vec::new();
        for ev in &self.events {
            let entry = match ev {
                PartitionEvent::Heal { .. } => None,
                PartitionEvent::Partition { groups, .. } => {
                    let mut per_node = vec![None; width];
                    for (g, members) in groups.iter().enumerate() {
                        for &n in members {
                            per_node[n as usize] = Some(g as u32);
                        }
                    }
                    Some(per_node)
                }
            };
            changes.push((ev.at(), entry));
        }
        if let Some(spec) = self.sampled {
            let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
            // Inverse-CDF exponential sampling, floored at 1 µs so every
            // drawn interval advances time.
            let exp = |rng: &mut ChaCha8Rng, mean: SimDuration| {
                let u: f64 = rng.gen_range(0.0..1.0);
                let d = -(mean.as_micros() as f64) * (1.0 - u).ln();
                SimDuration::micros((d as u64).max(1))
            };
            let mut t = SimTime(0);
            for _ in 0..spec.cycles {
                t += exp(&mut rng, spec.mean_heal);
                let mut ids: Vec<u32> = (0..width as u32).collect();
                ids.shuffle(&mut rng);
                let mut per_node = vec![None; width];
                for (i, &n) in ids.iter().enumerate() {
                    per_node[n as usize] = Some(u32::from(i >= width / 2));
                }
                changes.push((t, Some(per_node)));
                t += exp(&mut rng, spec.mean_partition);
                changes.push((t, None));
            }
        }
        changes.sort_by_key(|(at, _)| *at);
        PartitionTimeline { changes }
    }
}

/// A [`PartitionPlan`] expanded against a fixed node count: the
/// time-sorted sequence of connectivity states every backend consults.
///
/// [`PartitionTimeline::cuts_at`] is a pure function of `(time, src,
/// dst)` — no RNG, no interior state — which is what lets the sequential
/// and sharded DES engines agree link-for-link without routing partition
/// events through the event heaps (heap traffic would perturb the
/// `(time, shard, seq)` tie-break keys and break bit-equality pins).
/// Timestamp-keyed lookup is equivalent to delivering the partition
/// events through the conservative horizon protocol: both orders every
/// connectivity change against every delivery by simulation time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PartitionTimeline {
    /// Time-sorted connectivity changes: `None` = fully healed,
    /// `Some(groups)` = per-node group id (`None` inside = unaffected,
    /// reachable from everyone).
    changes: Vec<(SimTime, Option<Vec<Option<u32>>>)>,
}

impl PartitionTimeline {
    /// Whether the timeline never changes connectivity.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Whether the link `a ↔ b` is cut at time `at`: true iff the last
    /// change at or before `at` is a partition that places both nodes in
    /// distinct groups. Nodes no partition names are connected to
    /// everyone.
    pub fn cuts_at(&self, at: SimTime, a: u32, b: u32) -> bool {
        let idx = self.changes.partition_point(|(t, _)| *t <= at);
        let Some((_, Some(groups))) = idx.checked_sub(1).map(|i| &self.changes[i]) else {
            return false;
        };
        match (
            groups.get(a as usize).copied().flatten(),
            groups.get(b as usize).copied().flatten(),
        ) {
            (Some(ga), Some(gb)) => ga != gb,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_none() {
        assert!(FaultPlan::none().is_none());
        assert!(!FaultPlan::none().samples_anything());
        assert!(!FaultPlan::exhaustive(1, 1).samples_anything());
    }

    #[test]
    fn sampled_plan_samples() {
        let p = FaultPlan::sampled(7).with_drop(0.5);
        assert!(p.samples_anything());
        assert!(!p.is_none());
    }

    #[test]
    fn sampler_is_deterministic() {
        let plan = FaultPlan::sampled(42)
            .with_drop(0.3)
            .with_duplicate(0.3)
            .with_reorder(0.3, SimDuration::millis(5));
        let draw = |mut s: FaultSampler| {
            (0..200)
                .map(|_| (s.on_delivery(), s.reorder()))
                .collect::<Vec<_>>()
        };
        let a = draw(FaultSampler::new(plan));
        let b = draw(FaultSampler::new(plan));
        assert_eq!(a, b);
        assert!(a.iter().any(|(f, _)| *f == DeliveryFault::Drop));
        assert!(a.iter().any(|(f, _)| *f == DeliveryFault::Duplicate));
        assert!(a.iter().any(|(_, r)| r.is_some()));
    }

    #[test]
    fn reorder_budget_is_enforced() {
        let plan = FaultPlan {
            max_reorders: 4,
            reorder_prob: 1.0,
            reorder_jitter: SimDuration::millis(1),
            ..FaultPlan::none()
        };
        let mut s = FaultSampler::new(plan);
        let hits = (0..20).filter(|_| s.reorder().is_some()).count();
        assert_eq!(hits, 4, "max_reorders must cap reordered deliveries");
        assert!(!FaultPlan::none().with_max_reorders(1).is_none());
        assert!(plan.samples_anything());
        let exhausted = FaultPlan {
            max_reorders: 0,
            ..plan
        };
        assert!(
            !exhausted.samples_anything(),
            "no budget left, nothing to sample"
        );
    }

    #[test]
    fn zero_jitter_reorder_samples_nothing() {
        // Built directly (the with_reorder builder debug-asserts against
        // this combination): positive probability, zero jitter.
        let plan = FaultPlan {
            reorder_prob: 0.9,
            reorder_jitter: SimDuration::ZERO,
            max_reorders: u32::MAX,
            ..FaultPlan::none()
        };
        assert!(!plan.samples_anything());
        let mut s = FaultSampler::new(plan);
        assert!((0..50).all(|_| s.reorder().is_none()));
        // No randomness consumed: the underlying stream is untouched, so
        // a drop draw afterwards matches a fresh sampler's first draw.
        let mut fresh = FaultSampler::new(FaultPlan {
            drop_prob: 0.5,
            ..plan
        });
        let mut used = FaultSampler::new(FaultPlan {
            drop_prob: 0.5,
            ..plan
        });
        for _ in 0..50 {
            let _ = used.reorder();
        }
        assert_eq!(fresh.on_delivery(), used.on_delivery());
    }

    #[test]
    fn budgets_cap_sampled_faults() {
        let plan = FaultPlan {
            max_drops: 3,
            max_duplicates: 2,
            drop_prob: 1.0,
            duplicate_prob: 1.0,
            ..FaultPlan::none()
        };
        let mut s = FaultSampler::new(plan);
        let faults: Vec<_> = (0..10).map(|_| s.on_delivery()).collect();
        let drops = faults.iter().filter(|f| **f == DeliveryFault::Drop).count();
        let dups = faults
            .iter()
            .filter(|f| **f == DeliveryFault::Duplicate)
            .count();
        assert_eq!(drops, 3);
        assert_eq!(dups, 2);
        assert!(faults[5..].iter().all(|f| *f == DeliveryFault::None));
    }

    #[test]
    fn scripted_partition_cuts_and_heals() {
        let plan = PartitionPlan::none()
            .partition_at(SimTime(100), vec![vec![0, 1], vec![2, 3]])
            .heal_at(SimTime(200));
        assert!(!plan.is_none());
        let tl = plan.expand(4);
        assert!(!tl.is_empty());
        // Before the partition: fully connected.
        assert!(!tl.cuts_at(SimTime(99), 0, 2));
        // During: cross-group links cut, in-group links up.
        assert!(tl.cuts_at(SimTime(100), 0, 2));
        assert!(tl.cuts_at(SimTime(150), 1, 3));
        assert!(!tl.cuts_at(SimTime(150), 0, 1));
        assert!(!tl.cuts_at(SimTime(150), 2, 3));
        // After the heal: fully connected again.
        assert!(!tl.cuts_at(SimTime(200), 0, 2));
        assert!(!tl.cuts_at(SimTime(1_000), 1, 3));
    }

    #[test]
    fn unlisted_nodes_stay_connected() {
        let plan = PartitionPlan::none().partition_at(SimTime(0), vec![vec![0], vec![1]]);
        let tl = plan.expand(3);
        assert!(tl.cuts_at(SimTime(5), 0, 1));
        assert!(!tl.cuts_at(SimTime(5), 0, 2));
        assert!(!tl.cuts_at(SimTime(5), 1, 2));
        // Out-of-range nodes are connected too.
        assert!(!tl.cuts_at(SimTime(5), 0, 99));
    }

    #[test]
    fn sampled_partitions_are_deterministic_bisections() {
        let plan = PartitionPlan::sampled(7, SimDuration::millis(50), SimDuration::millis(20), 3);
        let a = plan.expand(8);
        let b = plan.expand(8);
        assert_eq!(a, b, "expansion must be deterministic in (plan, count)");
        // Each cycle contributes a partition and a heal.
        assert_eq!(a.changes.len(), 6);
        for w in a.changes.windows(2) {
            assert!(w[0].0 <= w[1].0, "changes must be time-sorted");
        }
        for (i, (_, change)) in a.changes.iter().enumerate() {
            if i % 2 == 0 {
                let groups = change.as_ref().expect("even changes partition");
                let side0 = groups.iter().filter(|g| **g == Some(0)).count();
                let side1 = groups.iter().filter(|g| **g == Some(1)).count();
                assert_eq!(side0 + side1, 8, "bisection covers every node");
                assert_eq!(side0, 4, "bisection splits in half");
            } else {
                assert!(change.is_none(), "odd changes heal");
            }
        }
    }

    #[test]
    fn empty_plan_never_cuts() {
        let tl = PartitionPlan::none().expand(16);
        assert!(tl.is_empty());
        assert!(!tl.cuts_at(SimTime(0), 0, 1));
        assert!(PartitionPlan::none().is_none());
        assert!(
            PartitionPlan::sampled(0, SimDuration::millis(1), SimDuration::millis(1), 0).is_none()
        );
    }
}
