//! Node mobility models.
//!
//! The paper's scenario is "a local ad-hoc network [that] forms
//! spontaneously, as nodes move in range of each other" (§1). The standard
//! way to exercise that churn in simulation is the random-waypoint model:
//! each node repeatedly picks a uniform destination and speed, walks there,
//! pauses, and repeats. [`Mobility::Static`] covers fixed infrastructure
//! nodes (§1 allows mixing in a wired fixed set).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::geometry::{Area, Point};
use crate::time::SimDuration;

/// Per-node mobility behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Mobility {
    /// The node never moves.
    Static,
    /// Random waypoint: walk to a uniform destination at a uniform speed
    /// from `[min_speed, max_speed]` m/s, pause, repeat.
    RandomWaypoint {
        /// Lower speed bound (m/s), > 0.
        min_speed: f64,
        /// Upper speed bound (m/s), ≥ `min_speed`.
        max_speed: f64,
        /// Pause at each waypoint.
        pause: SimDuration,
    },
}

/// Mutable walk state of one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MobilityState {
    model: Mobility,
    /// Current leg destination (meaningless for `Static`).
    target: Point,
    /// Current speed (m/s).
    speed: f64,
    /// Remaining pause time at a reached waypoint (µs).
    pause_left: u64,
}

impl MobilityState {
    /// Initialises the walk at `start`.
    pub fn new(model: Mobility, start: Point) -> Self {
        Self {
            model,
            target: start,
            speed: 0.0,
            pause_left: 0,
        }
    }

    /// The model this state follows.
    pub fn model(&self) -> &Mobility {
        &self.model
    }

    /// Advances the walk by `dt`, returning the node's new position.
    ///
    /// Waypoint selection consumes `rng`; a `Static` node never touches it,
    /// so adding fixed nodes does not perturb the random sequence of the
    /// mobile ones beyond their own draws.
    pub fn advance(
        &mut self,
        pos: Point,
        dt: SimDuration,
        area: &Area,
        rng: &mut impl Rng,
    ) -> Point {
        match self.model {
            Mobility::Static => pos,
            Mobility::RandomWaypoint {
                min_speed,
                max_speed,
                pause,
            } => {
                let mut remaining_us = dt.as_micros();
                let mut p = pos;
                while remaining_us > 0 {
                    if self.pause_left > 0 {
                        let consumed = self.pause_left.min(remaining_us);
                        self.pause_left -= consumed;
                        remaining_us -= consumed;
                        continue;
                    }
                    if p.distance(&self.target) == 0.0 {
                        // Pick the next leg.
                        self.target = area.sample(rng);
                        self.speed = if max_speed > min_speed {
                            rng.gen_range(min_speed..=max_speed)
                        } else {
                            min_speed
                        };
                        self.pause_left = pause.as_micros();
                        continue;
                    }
                    let step_time_s = remaining_us as f64 / 1e6;
                    let step = self.speed * step_time_s;
                    let (np, reached) = p.step_towards(&self.target, step);
                    if reached {
                        // Consume only the time actually needed for the leg.
                        let needed_s = p.distance(&self.target) / self.speed.max(1e-9);
                        let needed_us = (needed_s * 1e6).ceil() as u64;
                        remaining_us = remaining_us.saturating_sub(needed_us.max(1));
                        p = np;
                    } else {
                        p = np;
                        remaining_us = 0;
                    }
                }
                area.clamp(p)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn area() -> Area {
        Area::new(100.0, 100.0)
    }

    #[test]
    fn static_node_never_moves() {
        let mut st = MobilityState::new(Mobility::Static, Point::new(5.0, 5.0));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let p = st.advance(
            Point::new(5.0, 5.0),
            SimDuration::secs(100),
            &area(),
            &mut rng,
        );
        assert_eq!(p, Point::new(5.0, 5.0));
    }

    #[test]
    fn waypoint_node_moves_and_stays_in_area() {
        let model = Mobility::RandomWaypoint {
            min_speed: 1.0,
            max_speed: 5.0,
            pause: SimDuration::ZERO,
        };
        let start = Point::new(50.0, 50.0);
        let mut st = MobilityState::new(model, start);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut p = start;
        let mut moved = false;
        for _ in 0..50 {
            let np = st.advance(p, SimDuration::secs(1), &area(), &mut rng);
            assert!(area().contains(&np));
            if np != p {
                moved = true;
            }
            p = np;
        }
        assert!(moved, "waypoint node should move within 50 s");
    }

    #[test]
    fn speed_bounds_limit_displacement() {
        let model = Mobility::RandomWaypoint {
            min_speed: 2.0,
            max_speed: 2.0,
            pause: SimDuration::ZERO,
        };
        let start = Point::new(50.0, 50.0);
        let mut st = MobilityState::new(model, start);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut p = start;
        for _ in 0..20 {
            let np = st.advance(p, SimDuration::secs(1), &area(), &mut rng);
            // At 2 m/s, one second moves at most 2 m (+ tiny rounding).
            assert!(np.distance(&p) <= 2.0 + 1e-6);
            p = np;
        }
    }

    #[test]
    fn pause_halts_progress() {
        let model = Mobility::RandomWaypoint {
            min_speed: 1000.0, // reaches any waypoint within one tick
            max_speed: 1000.0,
            pause: SimDuration::secs(3600),
        };
        let start = Point::new(0.0, 0.0);
        let mut st = MobilityState::new(model, start);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        // First advance picks a waypoint & immediately starts the pause
        // (pause is set when the leg is chosen and consumed after arrival).
        let p1 = st.advance(start, SimDuration::secs(1), &area(), &mut rng);
        let p2 = st.advance(p1, SimDuration::secs(1), &area(), &mut rng);
        // During the long pause the node must not take a *new* leg.
        assert_eq!(p1.distance(&p2), 0.0);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let model = Mobility::RandomWaypoint {
            min_speed: 1.0,
            max_speed: 5.0,
            pause: SimDuration::millis(100),
        };
        let run = |seed: u64| {
            let mut st = MobilityState::new(model.clone(), Point::new(10.0, 10.0));
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut p = Point::new(10.0, 10.0);
            for _ in 0..25 {
                p = st.advance(p, SimDuration::secs(1), &area(), &mut rng);
            }
            p
        };
        assert_eq!(run(7), run(7));
    }
}
