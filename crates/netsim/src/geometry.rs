//! 2-D geometry for node placement and mobility.

use serde::{Deserialize, Serialize};

/// A position in metres on the simulation plane.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// X coordinate (m).
    pub x: f64,
    /// Y coordinate (m).
    pub y: f64,
}

impl Point {
    /// Builds a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other` (m).
    pub fn distance(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Moves `step` metres towards `target`, stopping exactly on it if the
    /// remaining distance is smaller. Returns the new position and whether
    /// the target was reached.
    pub fn step_towards(&self, target: &Point, step: f64) -> (Point, bool) {
        let d = self.distance(target);
        if d <= step || d == 0.0 {
            return (*target, true);
        }
        let t = step / d;
        (
            Point::new(
                self.x + (target.x - self.x) * t,
                self.y + (target.y - self.y) * t,
            ),
            false,
        )
    }
}

/// The rectangular simulation area `[0, width] × [0, height]` metres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Area {
    /// Width (m).
    pub width: f64,
    /// Height (m).
    pub height: f64,
}

impl Area {
    /// Builds an area.
    pub const fn new(width: f64, height: f64) -> Self {
        Self { width, height }
    }

    /// Clamps a point into the area.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(p.x.clamp(0.0, self.width), p.y.clamp(0.0, self.height))
    }

    /// True if the point lies inside (inclusive).
    pub fn contains(&self, p: &Point) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }

    /// Uniformly random point inside the area.
    pub fn sample(&self, rng: &mut impl rand::Rng) -> Point {
        Point::new(
            rng.gen_range(0.0..=self.width),
            rng.gen_range(0.0..=self.height),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn step_towards_converges() {
        let mut p = Point::new(0.0, 0.0);
        let target = Point::new(10.0, 0.0);
        let mut reached = false;
        for _ in 0..5 {
            let (np, r) = p.step_towards(&target, 3.0);
            p = np;
            reached = r;
            if reached {
                break;
            }
        }
        assert!(reached);
        assert_eq!(p, target);
    }

    #[test]
    fn step_towards_never_overshoots() {
        let p = Point::new(0.0, 0.0);
        let target = Point::new(1.0, 0.0);
        let (np, reached) = p.step_towards(&target, 100.0);
        assert!(reached);
        assert_eq!(np, target);
    }

    #[test]
    fn area_clamp_and_contains() {
        let a = Area::new(100.0, 50.0);
        assert!(a.contains(&Point::new(100.0, 50.0)));
        assert!(!a.contains(&Point::new(100.1, 0.0)));
        let c = a.clamp(Point::new(-5.0, 80.0));
        assert_eq!(c, Point::new(0.0, 50.0));
    }

    #[test]
    fn sample_stays_inside() {
        let a = Area::new(30.0, 30.0);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert!(a.contains(&a.sample(&mut rng)));
        }
    }
}
