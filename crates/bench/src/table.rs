//! Result tables: aligned stdout rendering plus CSV files under
//! `results/`, so every figure/table of EXPERIMENTS.md can be regenerated
//! and re-plotted from the same run.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A simple column-aligned results table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a string (markdown-ish, aligned).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::from("|");
            for (c, w) in cells.iter().zip(widths.iter()) {
                let _ = write!(s, " {c:>w$} |", w = w);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<w$}|", "", w = w + 2);
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes `name.csv` under `dir` (created if missing).
    pub fn write_csv(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut f = fs::File::create(dir.join(format!("{name}.csv")))?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }
}

/// Formats a float with 4 decimals (table cell helper).
pub fn f(x: f64) -> String {
    if x.is_infinite() {
        "inf".to_string()
    } else {
        format!("{x:.4}")
    }
}

/// Mean of a slice (0 when empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (0 when < 2 samples).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Runs `reps` seeded replications of `job` across threads (one batch per
/// available core) and collects results in seed order — the harness-side
/// parallelism noted in DESIGN.md §5.
pub fn replicate<T: Send>(reps: u64, job: impl Fn(u64) -> T + Sync) -> Vec<T> {
    let mut out: Vec<Option<T>> = (0..reps).map(|_| None).collect();
    let chunk = out
        .len()
        .div_ceil(std::thread::available_parallelism().map_or(4, |p| p.get()));
    if chunk == 0 {
        return Vec::new();
    }
    std::thread::scope(|scope| {
        for (ci, slot) in out.chunks_mut(chunk).enumerate() {
            let job = &job;
            scope.spawn(move || {
                for (i, s) in slot.iter_mut().enumerate() {
                    *s = Some(job((ci * chunk + i) as u64));
                }
            });
        }
    });
    out.into_iter().map(|x| x.expect("job ran")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["n", "value"]);
        t.row(vec!["1".into(), "0.5".into()]);
        t.row(vec!["100".into(), "12.25".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("|   n |"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("qosc-table-test");
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.write_csv(&dir, "demo").unwrap();
        let s = std::fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert_eq!(s, "a,b\n1,2\n");
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert!((stddev(&[2.0, 4.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert_eq!(stddev(&[1.0]), 0.0);
        assert_eq!(f(f64::INFINITY), "inf");
        assert_eq!(f(0.12345), "0.1235");
    }

    #[test]
    fn replicate_preserves_seed_order() {
        let out = replicate(17, |seed| seed * 2);
        assert_eq!(out, (0..17).map(|s| s * 2).collect::<Vec<_>>());
    }
}
