//! Bridges populations/templates into offline allocation instances.

use std::collections::HashMap;
use std::sync::Arc;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qosc_baselines::{Instance, OfflineNode, OfflineTask};
use qosc_core::{EvalConfig, LinearPenalty, QuadraticPenalty, RewardModel};
use qosc_resources::{ResourceKind, SchedulingPolicy};
use qosc_spec::TaskId;
use qosc_workloads::{AppTemplate, PopulationConfig};
use std::sync::Arc as StdArc;

/// Builds an offline instance: `n_nodes` drawn from `population` (node 0
/// is the requester), `n_tasks` instances of `template`.
pub fn population_instance(
    population: &PopulationConfig,
    n_nodes: usize,
    template: AppTemplate,
    n_tasks: usize,
    seed: u64,
) -> Instance {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let profiles = population.sample_many(n_nodes, &mut rng);
    let spec = template.spec();
    let resolved = template
        .request()
        .resolve(&spec)
        .expect("catalog requests resolve");
    let model = template.demand_model();
    let nodes = profiles
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut models: HashMap<String, Arc<dyn qosc_resources::DemandModel>> = HashMap::new();
            models.insert(spec.name().to_string(), Arc::clone(&model));
            // Nodes run their own degradation policies (§5: penalty "can
            // be defined according to user's own criteria"): odd nodes
            // degrade quadratically, which shapes their offers differently
            // and exercises cross-dimension trade-offs in evaluation.
            let reward: StdArc<dyn RewardModel> = if i % 2 == 1 {
                StdArc::new(QuadraticPenalty::default())
            } else {
                StdArc::new(LinearPenalty::default())
            };
            OfflineNode {
                id: i as u32,
                capacity: p.capacity,
                link_kbps: p.capacity.get(ResourceKind::NetBandwidth),
                policy: SchedulingPolicy::Edf,
                models,
                reward: Some(reward),
            }
        })
        .collect();
    let tasks = (0..n_tasks)
        .map(|i| {
            let (input_bytes, output_bytes) = template.payload(&mut rng);
            OfflineTask::new(
                TaskId(i as u32),
                spec.clone(),
                resolved.clone(),
                input_bytes,
                output_bytes,
            )
        })
        .collect();
    Instance {
        requester: 0,
        nodes,
        tasks,
        eval: EvalConfig::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_shape_matches_request() {
        let inst = population_instance(
            &PopulationConfig::default(),
            6,
            AppTemplate::Surveillance,
            3,
            42,
        );
        assert_eq!(inst.nodes.len(), 6);
        assert_eq!(inst.tasks.len(), 3);
        assert_eq!(inst.requester, 0);
        // Deterministic.
        let inst2 = population_instance(
            &PopulationConfig::default(),
            6,
            AppTemplate::Surveillance,
            3,
            42,
        );
        assert_eq!(inst.nodes[3].capacity, inst2.nodes[3].capacity);
        assert_eq!(inst.tasks[2].input_bytes, inst2.tasks[2].input_bytes);
    }
}
