//! Bridges populations/templates into offline allocation instances —
//! and the same instances into live runtime scenarios, so an experiment
//! can compare the closed-form emulation against the actual protocol on
//! any `qosc_core::runtime` backend.

use std::collections::HashMap;
use std::sync::Arc;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qosc_baselines::{Instance, OfflineNode, OfflineTask};
use qosc_core::{
    CoalitionNode, DirectRuntime, EvalConfig, LinearPenalty, OrganizerConfig, OrganizerEngine,
    OrganizerStrategy, ProviderConfig, ProviderEngine, ProviderStrategy, QuadraticPenalty,
    RewardModel, Runtime,
};
use qosc_resources::{ResourceKind, SchedulingPolicy};
use qosc_spec::{ServiceDef, TaskDef, TaskId};
use qosc_workloads::{AppTemplate, PopulationConfig};
use std::sync::Arc as StdArc;

/// Builds an offline instance: `n_nodes` drawn from `population` (node 0
/// is the requester), `n_tasks` instances of `template`.
pub fn population_instance(
    population: &PopulationConfig,
    n_nodes: usize,
    template: AppTemplate,
    n_tasks: usize,
    seed: u64,
) -> Instance {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let profiles = population.sample_many(n_nodes, &mut rng);
    let spec = template.spec();
    let resolved = template
        .request()
        .resolve(&spec)
        .expect("catalog requests resolve");
    let model = template.demand_model();
    let nodes = profiles
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut models: HashMap<String, Arc<dyn qosc_resources::DemandModel>> = HashMap::new();
            models.insert(spec.name().to_string(), Arc::clone(&model));
            // Nodes run their own degradation policies (§5: penalty "can
            // be defined according to user's own criteria"): odd nodes
            // degrade quadratically, which shapes their offers differently
            // and exercises cross-dimension trade-offs in evaluation.
            let reward: StdArc<dyn RewardModel> = if i % 2 == 1 {
                StdArc::new(QuadraticPenalty::default())
            } else {
                StdArc::new(LinearPenalty::default())
            };
            OfflineNode {
                id: i as u32,
                capacity: p.capacity,
                link_kbps: p.capacity.get(ResourceKind::NetBandwidth),
                policy: SchedulingPolicy::Edf,
                models,
                reward: Some(reward),
                chain: ProviderStrategy::default(),
            }
        })
        .collect();
    let tasks = (0..n_tasks)
        .map(|i| {
            let (input_bytes, output_bytes) = template.payload(&mut rng);
            OfflineTask::new(
                TaskId(i as u32),
                spec.clone(),
                resolved.clone(),
                input_bytes,
                output_bytes,
            )
        })
        .collect();
    Instance {
        requester: 0,
        nodes,
        tasks,
        eval: EvalConfig::default(),
        chain: OrganizerStrategy::default(),
    }
}

/// Re-assembles an offline [`Instance`] as a zero-latency runtime
/// scenario: one [`CoalitionNode`] per [`OfflineNode`] (the requester
/// also organizes, with the instance's evaluation config and monitoring
/// off — formation cost only), same capacities, link bandwidths, demand
/// models and per-node reward policies.
pub fn instance_runtime(inst: &Instance) -> DirectRuntime {
    let mut rt = DirectRuntime::new();
    for n in &inst.nodes {
        let reward: Arc<dyn RewardModel> = n
            .reward
            .clone()
            .unwrap_or_else(|| Arc::new(LinearPenalty::default()));
        let mut provider = ProviderEngine::new(
            n.id,
            n.capacity,
            ProviderConfig {
                link_kbps: n.link_kbps,
                policy: n.policy,
                reward,
                chain: n.chain.clone(),
                ..Default::default()
            },
        );
        for (name, model) in &n.models {
            provider.register_demand_model(name.clone(), Arc::clone(model));
        }
        let mut node = CoalitionNode::new(n.id).with_provider(provider);
        if n.id == inst.requester {
            node = node.with_organizer(OrganizerEngine::new(
                n.id,
                OrganizerConfig {
                    eval: inst.eval,
                    monitor: false,
                    chain: inst.chain.clone(),
                    ..Default::default()
                },
            ));
        }
        rt.add_node(node).expect("instance node ids are unique");
    }
    rt
}

/// The instance's task list as a [`ServiceDef`] over the template's
/// (unresolved) request, preserving each task's payload sizes.
pub fn instance_service(inst: &Instance, template: AppTemplate, name: &str) -> ServiceDef {
    ServiceDef::new(
        name,
        inst.tasks
            .iter()
            .map(|t| TaskDef {
                name: format!("t{}", t.id.0),
                spec: t.spec.clone(),
                request: template.request(),
                input_bytes: t.input_bytes,
                output_bytes: t.output_bytes,
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_shape_matches_request() {
        let inst = population_instance(
            &PopulationConfig::default(),
            6,
            AppTemplate::Surveillance,
            3,
            42,
        );
        assert_eq!(inst.nodes.len(), 6);
        assert_eq!(inst.tasks.len(), 3);
        assert_eq!(inst.requester, 0);
        // Deterministic.
        let inst2 = population_instance(
            &PopulationConfig::default(),
            6,
            AppTemplate::Surveillance,
            3,
            42,
        );
        assert_eq!(inst.nodes[3].capacity, inst2.nodes[3].capacity);
        assert_eq!(inst.tasks[2].input_bytes, inst2.tasks[2].input_bytes);
    }

    #[test]
    fn instance_runs_as_a_protocol_scenario() {
        use qosc_core::NegoEvent;
        use qosc_netsim::SimTime;
        let inst = population_instance(
            &PopulationConfig::default(),
            5,
            AppTemplate::Surveillance,
            2,
            7,
        );
        let mut rt = instance_runtime(&inst);
        let svc = instance_service(&inst, AppTemplate::Surveillance, "svc");
        rt.submit(inst.requester, svc, SimTime(1_000)).unwrap();
        rt.run(SimTime(30_000_000));
        assert!(
            rt.events().iter().any(|e| matches!(
                e.event,
                NegoEvent::Formed { .. } | NegoEvent::FormationIncomplete { .. }
            )),
            "the protocol must settle on the instance: {:?}",
            rt.events()
        );
    }
}
