//! F8 — strategy-chain comparison: pluggable negotiation policies
//! head-to-head on the T4 push grid.
//!
//! The §4.2/§5 engines take every decision through a
//! [`qosc_core::strategy`] chain; this experiment runs the same
//! contention scenario (256 nodes, simultaneous multi-organizer kickoff,
//! dense and constrained pools) under five chains and compares the
//! trade-offs each buys:
//!
//! * `default` — empty chains, the paper-literal protocol.
//! * `reserve-price` — providers withhold offers whose per-task eq. 1
//!   reward falls below 3.5 (preferred surveillance quality is 4.0), so
//!   only near-preferred offers reach the organizer.
//! * `battery-gate` — providers sit a round out once their free CPU
//!   drops under half of capacity, modelling §7's battery-preserving
//!   devices.
//! * `selfish` — providers degrade every offer one ladder step below
//!   what they could serve and mark the declared reward up 25%.
//! * `reputation` — the organizer penalises distrusted (even-id) nodes'
//!   candidates, trading assignment quality for partner choice.
//!
//! Reserve pricing converts degraded assignments into unplaced tasks
//! (fewer, better placements); the battery gate thins contention and
//! messages; selfish offers keep the formed ratio but pay for it in
//! distance; reputation steers placements off half the pool. With
//! `BENCH_JSON` set, one machine-readable line per cell is appended to
//! the same file the criterion-shim benches write, so CI diffs strategy
//! outcomes run-over-run; `F8_SMOKE=1` shrinks the grid to one cheap
//! cell per chain for pull-request CI.

use std::collections::BTreeMap;

use qosc_core::strategy::{BatteryGate, ReputationScorer, ReservePrice, SelfishMarkup};
use qosc_core::{NegoEvent, OrganizerStrategy, ProviderStrategy};
use qosc_netsim::SimTime;
use qosc_workloads::{AppTemplate, Backend, PopulationConfig, ScenarioConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::table::{f, mean, replicate, Table};

/// The compared chains, in presentation order.
const CHAINS: [&str; 5] = [
    "default",
    "reserve-price",
    "battery-gate",
    "selfish",
    "reputation",
];

fn smoke() -> bool {
    std::env::var("F8_SMOKE").is_ok_and(|v| v != "0")
}

/// Builds the provider/organizer chain pair for a named variant.
fn chains(variant: &str, nodes: usize) -> (ProviderStrategy, OrganizerStrategy) {
    match variant {
        "default" => (ProviderStrategy::new(), OrganizerStrategy::new()),
        "reserve-price" => (
            ProviderStrategy::new().with(ReservePrice { min_reward: 3.5 }),
            OrganizerStrategy::new(),
        ),
        "battery-gate" => (
            ProviderStrategy::new().with(BatteryGate {
                min_cpu_fraction: 0.5,
            }),
            OrganizerStrategy::new(),
        ),
        "selfish" => (
            ProviderStrategy::new().with(SelfishMarkup {
                degrade_steps: 1,
                markup: 1.25,
            }),
            OrganizerStrategy::new(),
        ),
        "reputation" => {
            let reputations: BTreeMap<u32, f64> = (0..nodes as u32)
                .map(|id| (id, if id % 2 == 0 { 0.2 } else { 1.0 }))
                .collect();
            (
                ProviderStrategy::new(),
                OrganizerStrategy::new().with(ReputationScorer {
                    reputations,
                    default_reputation: 1.0,
                    weight: 0.5,
                }),
            )
        }
        other => unreachable!("unknown chain variant {other}"),
    }
}

/// One replication of the T4 contention scenario under a chain pair.
/// Returns (formed ratio, mean distance, unassigned tasks, messages).
fn run_once(
    variant: &str,
    nodes: usize,
    organizers: usize,
    tasks: usize,
    population: PopulationConfig,
    seed: u64,
) -> (f64, f64, f64, f64) {
    let (provider_chain, organizer_chain) = chains(variant, nodes);
    let config = ScenarioConfig {
        organizer: qosc_core::OrganizerConfig {
            monitor: false, // formation cost only
            chain: organizer_chain,
            ..Default::default()
        },
        provider: qosc_core::ProviderConfig {
            heartbeat_interval: qosc_netsim::SimDuration::secs(3600),
            chain: provider_chain,
            ..Default::default()
        },
        population,
        ..ScenarioConfig::dense(nodes, 0xF8_0000 + seed * 31 + nodes as u64)
    };
    let mut rt = config.build_backend(Backend::Direct);
    let mut rng = ChaCha8Rng::seed_from_u64(0xF8_EEEE + seed);
    for org in 0..organizers {
        let svc = AppTemplate::Surveillance.service(format!("svc-{org}"), tasks, &mut rng);
        rt.submit(org as u32, svc, SimTime(1_000))
            .expect("organizer exists");
    }
    rt.run(SimTime(30_000_000));
    let mut formed = 0usize;
    let mut settled = 0usize;
    let mut distances = Vec::new();
    let mut unassigned = 0usize;
    for e in rt.events() {
        match &e.event {
            NegoEvent::Formed { metrics, .. } => {
                formed += 1;
                settled += 1;
                distances.push(metrics.mean_distance());
            }
            NegoEvent::FormationIncomplete { metrics, .. } => {
                settled += 1;
                unassigned += metrics.unassigned.len();
                if !metrics.outcomes.is_empty() {
                    distances.push(metrics.mean_distance());
                }
            }
            _ => {}
        }
    }
    assert_eq!(settled, organizers, "every negotiation must settle");
    (
        formed as f64 / organizers as f64,
        mean(&distances),
        unassigned as f64,
        rt.messages_sent() as f64,
    )
}

/// Appends one machine-readable line per cell when `BENCH_JSON` is set
/// (same file and line discipline as the criterion-shim benches).
fn emit_json(label: &str, formed: f64, dist: f64, unassigned: f64, msgs: f64, samples: u64) {
    let json = format!(
        "{{\"benchmark\":\"{label}\",\"formed_ratio\":{formed:.4},\
         \"mean_distance\":{dist:.4},\"unassigned_tasks\":{unassigned:.4},\
         \"messages\":{msgs:.1},\"samples\":{samples}}}"
    );
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    let path = std::path::Path::new(&path);
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        Ok(mut file) => {
            use std::io::Write as _;
            let _ = writeln!(file, "{json}");
        }
        Err(e) => eprintln!("BENCH_JSON: cannot append to {}: {e}", path.display()),
    }
}

/// Runs F8 and returns its table.
pub fn run() -> Table {
    let mut table = Table::new(
        "F8: strategy-chain comparison on the multi-organizer push grid \
         (DirectRuntime, simultaneous kickoff)",
        &[
            "chain",
            "nodes",
            "pool",
            "tasks_per_svc",
            "organizers",
            "formed_ratio",
            "mean_distance",
            "unassigned_tasks",
            "messages",
            "msgs_per_org",
        ],
    );
    // Full grid: the 256-node T4 push cells; smoke keeps one cheap cell
    // per chain so CI exercises every component without burning minutes.
    let (nodes, pools, task_counts, organizer_counts, reps): (
        usize,
        &[&str],
        &[usize],
        &[usize],
        u64,
    ) = if smoke() {
        (64, &["dense"], &[4], &[8], 1)
    } else {
        (256, &["dense", "thin"], &[4, 8], &[8, 32], 3)
    };
    for variant in CHAINS {
        for pool in pools {
            for &tasks in task_counts {
                for &organizers in organizer_counts {
                    let population = match *pool {
                        "dense" => PopulationConfig::default(),
                        _ => PopulationConfig::constrained(),
                    };
                    let results = replicate(reps, |seed| {
                        run_once(variant, nodes, organizers, tasks, population.clone(), seed)
                    });
                    let formed = mean(&results.iter().map(|r| r.0).collect::<Vec<_>>());
                    let dist = mean(&results.iter().map(|r| r.1).collect::<Vec<_>>());
                    let unassigned = mean(&results.iter().map(|r| r.2).collect::<Vec<_>>());
                    let msgs = mean(&results.iter().map(|r| r.3).collect::<Vec<_>>());
                    emit_json(
                        &format!("f8/{variant}/{pool}-t{tasks}-o{organizers}"),
                        formed,
                        dist,
                        unassigned,
                        msgs,
                        reps,
                    );
                    table.row(vec![
                        variant.to_string(),
                        nodes.to_string(),
                        pool.to_string(),
                        tasks.to_string(),
                        organizers.to_string(),
                        f(formed),
                        f(dist),
                        f(unassigned),
                        f(msgs),
                        f(msgs / organizers as f64),
                    ]);
                }
            }
        }
    }
    table
}
