//! F4 — optimality gap of the protocol's greedy selection.
//!
//! Paper claim (§6): the lowest-evaluation proposal per task, with the
//! §4.2 tie-breaks, yields the coalition "more closely related to user's
//! preferences". On instances small enough to enumerate we compare the
//! protocol against the exhaustive lexicographic optimum, plus the
//! QoS-blind comparators.

use qosc_baselines::{
    exhaustive_optimal, greedy_least_loaded, protocol_emulation, protocol_emulation_with,
    random_alloc, ProposalStrategy,
};
use qosc_core::TieBreak;
use qosc_workloads::{AppTemplate, PopulationConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::instances::population_instance;
use crate::table::{f, mean, replicate, Table};

const REPS: u64 = 40;
const NODES: usize = 4;
const TASKS: usize = 3;

/// Runs F4 and returns its table.
pub fn run() -> Table {
    let mut table = Table::new(
        "F4: optimality gap on enumerable instances (4 nodes, 3 tasks)",
        &[
            "policy",
            "mean_total_distance",
            "mean_gap_vs_optimal",
            "optimal_rate",
            "mean_comm_cost",
        ],
    );
    let population = PopulationConfig::constrained();
    let results = replicate(REPS, |seed| {
        let inst = population_instance(
            &population,
            NODES,
            AppTemplate::VideoConference,
            TASKS,
            0xF4_0000 + seed,
        );
        let opt = exhaustive_optimal(&inst, 10_000_000).expect("4^3 states fit the budget");
        let proto = protocol_emulation(&inst, &TieBreak::default());
        let proto_seq =
            protocol_emulation_with(&inst, &TieBreak::default(), ProposalStrategy::Sequential);
        let greedy = greedy_least_loaded(&inst);
        let mut rng = ChaCha8Rng::seed_from_u64(0xF4_BBBB + seed);
        let random = random_alloc(&inst, &mut rng);
        // Gap only meaningful when the optimum placed everything.
        let complete = opt.complete();
        [opt, proto, proto_seq, greedy, random].map(|a| {
            (
                a.total_distance(),
                a.total_comm_cost(),
                complete && a.complete(),
            )
        })
    });
    let opt_d: Vec<f64> = results.iter().map(|r| r[0].0).collect();
    for (i, name) in [
        "optimal",
        "protocol_joint",
        "protocol_seq",
        "greedy",
        "random",
    ]
    .iter()
    .enumerate()
    {
        let ds: Vec<f64> = results.iter().map(|r| r[i].0).collect();
        let cs: Vec<f64> = results.iter().map(|r| r[i].1).collect();
        let gaps: Vec<f64> = ds.iter().zip(opt_d.iter()).map(|(d, o)| d - o).collect();
        let optimal_rate =
            gaps.iter().filter(|g| g.abs() < 1e-9).count() as f64 / gaps.len().max(1) as f64;
        table.row(vec![
            name.to_string(),
            f(mean(&ds)),
            f(mean(&gaps)),
            f(optimal_rate),
            f(mean(&cs)),
        ]);
    }
    table
}
