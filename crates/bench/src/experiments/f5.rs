//! F5 — formation under topology churn (mobility sweep).
//!
//! Paper claim (§1/§4): the environment is "highly dynamic"; "a carefully
//! rationalized coalition planning may be useless or less useful by the
//! time the coalition is formed". We sweep pedestrian-to-vehicular node
//! speeds at two radio ranges and measure how often formation completes
//! and how many reconfiguration rounds operation needs within a fixed
//! window.

use qosc_core::NegoEvent;
use qosc_netsim::{Area, RadioModel, SimTime};
use qosc_workloads::{pedestrian, AppTemplate, PopulationConfig, Scenario, ScenarioConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::table::{f, mean, replicate, Table};

const REPS: u64 = 10;
const NODES: usize = 12;

/// Runs F5 and returns its table.
pub fn run() -> Table {
    let mut table = Table::new(
        "F5: formation success & reconfigurations vs node speed (60 s window)",
        &[
            "speed_ms",
            "range_m",
            "formed_ratio",
            "mean_member_failures",
            "mean_messages",
        ],
    );
    for &range in &[30.0, 50.0] {
        for &speed in &[0.0, 2.0, 5.0, 10.0, 20.0] {
            let results = replicate(REPS, |seed| {
                let config = ScenarioConfig {
                    nodes: NODES,
                    area: Area::new(150.0, 150.0),
                    radio: RadioModel {
                        range_m: range,
                        ..Default::default()
                    },
                    mobility: if speed > 0.0 {
                        Some(pedestrian(speed))
                    } else {
                        None
                    },
                    population: PopulationConfig::pure_adhoc(),
                    seed: 0xF5_0000 + seed * 7 + (speed as u64) * 131 + range as u64,
                    ..Default::default()
                };
                let mut scenario = Scenario::build(&config);
                let mut rng = ChaCha8Rng::seed_from_u64(0xF5_CCCC + seed);
                let svc = AppTemplate::Surveillance.service("svc", 3, &mut rng);
                scenario.submit(0, svc, SimTime(10_000));
                scenario.run_until(SimTime(60_000_000));
                let formed = scenario
                    .events()
                    .iter()
                    .any(|e| matches!(e.event, NegoEvent::Formed { .. }));
                let failures = scenario
                    .events()
                    .iter()
                    .filter(|e| matches!(e.event, NegoEvent::MemberFailed { .. }))
                    .count();
                let msgs = scenario.net_stats().messages_sent();
                (formed as u64 as f64, failures as f64, msgs as f64)
            });
            table.row(vec![
                f(speed),
                f(range),
                f(mean(&results.iter().map(|r| r.0).collect::<Vec<_>>())),
                f(mean(&results.iter().map(|r| r.1).collect::<Vec<_>>())),
                f(mean(&results.iter().map(|r| r.2).collect::<Vec<_>>())),
            ]);
        }
    }
    table
}
