//! T4 — multi-organizer contention: concurrent negotiations over one
//! shared provider pool.
//!
//! Every node in the runtime carries an organizer engine, so any subset
//! of nodes can originate services simultaneously. The base grid has
//! 1→16 organizers kick off a 2-task negotiation *at the same instant*
//! over populations of 64→256 nodes: each provider prices every CFP
//! against the capacity left after the tentative holds it already placed
//! for the others. Contention therefore shows up first in the message
//! columns — providers whose capacity is held propose for fewer (or no)
//! tasks, so proposals per organizer fall as the organizer count rises —
//! and only degrades assignment quality (mean distance, unplaced tasks)
//! once the concurrent demand approaches the pool's aggregate capacity.
//!
//! The *push* grid drives 256 nodes to that point: up to 32 simultaneous
//! organizers × up to 8 tasks per service, on both the dense default
//! pool and the `constrained` population (phones/PDAs only, a fraction
//! of the dense pool's aggregate CPU). On the dense pool the formed
//! ratio first dips at 4 tasks × 32 organizers (≈0.97) and falls to
//! ≈0.68 at 8×32 with mean distance rising from 0 to ≈0.11; on the thin
//! pool degradation starts immediately (formed ≈0.5 at 4 tasks × 8
//! organizers) and collapses to ≈0.03 at 8×32, where the concurrent
//! demand exceeds the pool's aggregate capacity several times over.
//!
//! Runs on the zero-latency `DirectRuntime` — with the heap-driven
//! formulation engine the provider side is cheap enough to sweep the
//! full push grid, since every round makes every provider price the
//! whole announced bundle.
//!
//! By the `runtime_equivalence` contract the protocol is identical to
//! the DES with the network effects turned off.

use qosc_core::NegoEvent;
use qosc_netsim::SimTime;
use qosc_workloads::{AppTemplate, Backend, PopulationConfig, ScenarioConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::table::{f, mean, replicate, Table};

fn reps(nodes: usize) -> u64 {
    if nodes >= 256 {
        3
    } else {
        6
    }
}

/// One replication: `organizers` services of `tasks` tasks each,
/// submitted at the same kickoff time over `nodes` devices. Returns
/// (formed ratio, mean distance over settled negotiations, unassigned
/// tasks, messages sent).
fn run_once(
    nodes: usize,
    organizers: usize,
    tasks: usize,
    population: PopulationConfig,
    seed: u64,
) -> (f64, f64, f64, f64) {
    let config = ScenarioConfig {
        organizer: qosc_core::OrganizerConfig {
            monitor: false, // formation cost only
            ..Default::default()
        },
        provider: qosc_core::ProviderConfig {
            heartbeat_interval: qosc_netsim::SimDuration::secs(3600),
            ..Default::default()
        },
        population,
        ..ScenarioConfig::dense(nodes, 0x74_0000 + seed * 31 + nodes as u64)
    };
    let mut rt = config.build_backend(Backend::Direct);
    let mut rng = ChaCha8Rng::seed_from_u64(0x74_EEEE + seed);
    for org in 0..organizers {
        let svc = AppTemplate::Surveillance.service(format!("svc-{org}"), tasks, &mut rng);
        // Same kickoff instant for every organizer: maximal contention.
        rt.submit(org as u32, svc, SimTime(1_000))
            .expect("organizer exists");
    }
    rt.run(SimTime(30_000_000));
    let mut formed = 0usize;
    let mut settled = 0usize;
    let mut distances = Vec::new();
    let mut unassigned = 0usize;
    for e in rt.events() {
        match &e.event {
            NegoEvent::Formed { metrics, .. } => {
                formed += 1;
                settled += 1;
                distances.push(metrics.mean_distance());
            }
            NegoEvent::FormationIncomplete { metrics, .. } => {
                settled += 1;
                unassigned += metrics.unassigned.len();
                if !metrics.outcomes.is_empty() {
                    distances.push(metrics.mean_distance());
                }
            }
            _ => {}
        }
    }
    // Hard assert: experiments run with --release, and a silently
    // unsettled negotiation would skew every column of the table.
    assert_eq!(settled, organizers, "every negotiation must settle");
    (
        formed as f64 / organizers as f64,
        mean(&distances),
        unassigned as f64,
        rt.messages_sent() as f64,
    )
}

/// Runs T4 and returns its table.
pub fn run() -> Table {
    let mut table = Table::new(
        "T4: multi-organizer contention on DirectRuntime (simultaneous kickoff; \
         push grid at 256 nodes on dense and constrained pools)",
        &[
            "nodes",
            "pool",
            "tasks_per_svc",
            "organizers",
            "formed_ratio",
            "mean_distance",
            "unassigned_tasks",
            "messages",
            "msgs_per_org",
        ],
    );
    let row = |nodes: usize, pool: &str, tasks: usize, organizers: usize| {
        let population = match pool {
            "dense" => PopulationConfig::default(),
            _ => PopulationConfig::constrained(),
        };
        let results = replicate(reps(nodes), |seed| {
            run_once(nodes, organizers, tasks, population.clone(), seed)
        });
        let formed: Vec<f64> = results.iter().map(|r| r.0).collect();
        let dist: Vec<f64> = results.iter().map(|r| r.1).collect();
        let unassigned: Vec<f64> = results.iter().map(|r| r.2).collect();
        let msgs: Vec<f64> = results.iter().map(|r| r.3).collect();
        vec![
            nodes.to_string(),
            pool.to_string(),
            tasks.to_string(),
            organizers.to_string(),
            f(mean(&formed)),
            f(mean(&dist)),
            f(mean(&unassigned)),
            f(mean(&msgs)),
            f(mean(&msgs) / organizers as f64),
        ]
    };
    // Base grid: the PR 4 sweep (2 tasks per service, dense pool).
    let mut rows = Vec::new();
    for nodes in [64usize, 128, 256] {
        for organizers in [1usize, 2, 4, 8, 16] {
            rows.push(row(nodes, "dense", 2, organizers));
        }
    }
    // Push grid: heavier bundles and thinner pools at 256 nodes, until
    // formed ratio / quality actually degrade.
    for pool in ["dense", "thin"] {
        for tasks in [4usize, 8] {
            for organizers in [8usize, 16, 32] {
                rows.push(row(256, pool, tasks, organizers));
            }
        }
    }
    for r in rows {
        table.row(r);
    }
    table
}
