//! T4 — multi-organizer contention: concurrent negotiations over one
//! shared provider pool.
//!
//! Every node in the runtime carries an organizer engine, so any subset
//! of nodes can originate services simultaneously. This sweep has 1→16
//! organizers kick off a 2-task negotiation *at the same instant* over
//! populations of 64→256 nodes: each provider prices every CFP against
//! the capacity left after the tentative holds it already placed for the
//! others. Contention therefore shows up first in the message columns —
//! providers whose capacity is held propose for fewer (or no) tasks, so
//! proposals per organizer fall as the organizer count rises — and only
//! degrades assignment quality (mean distance, unplaced tasks) once the
//! concurrent demand approaches the pool's aggregate capacity.
//!
//! Runs on the zero-latency `DirectRuntime` — cheap enough to sweep the
//! full grid at 256 nodes, and (by the `runtime_equivalence` contract)
//! protocol-identical to the DES with the network effects turned off.

use qosc_core::NegoEvent;
use qosc_netsim::SimTime;
use qosc_workloads::{AppTemplate, Backend, ScenarioConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::table::{f, mean, replicate, Table};

const TASKS: usize = 2;

fn reps(nodes: usize) -> u64 {
    if nodes >= 256 {
        3
    } else {
        6
    }
}

/// One replication: `organizers` services submitted at the same kickoff
/// time. Returns (formed ratio, mean distance over formed negotiations,
/// unassigned tasks, messages sent).
fn run_once(nodes: usize, organizers: usize, seed: u64) -> (f64, f64, f64, f64) {
    let config = ScenarioConfig {
        organizer: qosc_core::OrganizerConfig {
            monitor: false, // formation cost only
            ..Default::default()
        },
        provider: qosc_core::ProviderConfig {
            heartbeat_interval: qosc_netsim::SimDuration::secs(3600),
            ..Default::default()
        },
        ..ScenarioConfig::dense(nodes, 0x74_0000 + seed * 31 + nodes as u64)
    };
    let mut rt = config.build_backend(Backend::Direct);
    let mut rng = ChaCha8Rng::seed_from_u64(0x74_EEEE + seed);
    for org in 0..organizers {
        let svc = AppTemplate::Surveillance.service(format!("svc-{org}"), TASKS, &mut rng);
        // Same kickoff instant for every organizer: maximal contention.
        rt.submit(org as u32, svc, SimTime(1_000))
            .expect("organizer exists");
    }
    rt.run(SimTime(30_000_000));
    let mut formed = 0usize;
    let mut settled = 0usize;
    let mut distances = Vec::new();
    let mut unassigned = 0usize;
    for e in rt.events() {
        match &e.event {
            NegoEvent::Formed { metrics, .. } => {
                formed += 1;
                settled += 1;
                distances.push(metrics.mean_distance());
            }
            NegoEvent::FormationIncomplete { metrics, .. } => {
                settled += 1;
                unassigned += metrics.unassigned.len();
                if !metrics.outcomes.is_empty() {
                    distances.push(metrics.mean_distance());
                }
            }
            _ => {}
        }
    }
    // Hard assert: experiments run with --release, and a silently
    // unsettled negotiation would skew every column of the table.
    assert_eq!(settled, organizers, "every negotiation must settle");
    (
        formed as f64 / organizers as f64,
        mean(&distances),
        unassigned as f64,
        rt.messages_sent() as f64,
    )
}

/// Runs T4 and returns its table.
pub fn run() -> Table {
    let mut table = Table::new(
        "T4: multi-organizer contention on DirectRuntime (2 tasks each, simultaneous kickoff)",
        &[
            "nodes",
            "organizers",
            "formed_ratio",
            "mean_distance",
            "unassigned_tasks",
            "messages",
            "msgs_per_org",
        ],
    );
    for nodes in [64usize, 128, 256] {
        for organizers in [1usize, 2, 4, 8, 16] {
            let results = replicate(reps(nodes), |seed| run_once(nodes, organizers, seed));
            let formed: Vec<f64> = results.iter().map(|r| r.0).collect();
            let dist: Vec<f64> = results.iter().map(|r| r.1).collect();
            let unassigned: Vec<f64> = results.iter().map(|r| r.2).collect();
            let msgs: Vec<f64> = results.iter().map(|r| r.3).collect();
            table.row(vec![
                nodes.to_string(),
                organizers.to_string(),
                f(mean(&formed)),
                f(mean(&dist)),
                f(mean(&unassigned)),
                f(mean(&msgs)),
                f(mean(&msgs) / organizers as f64),
            ]);
        }
    }
    table
}
