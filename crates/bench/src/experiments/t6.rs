//! T6 — sharded-DES scaling: wall-clock throughput of the
//! region-partitioned conservative parallel simulator against the
//! sequential engine at 1024–4096 nodes.
//!
//! The workload is a spatially uniform beacon gossip at constant
//! density (600 m²/node, ~13 neighbours under the default 50 m radio;
//! 4096 nodes occupy a ~1.57 km square): every node broadcasts one
//! 64-byte message per 10 ms tick and re-arms its timer, receivers stay
//! silent. Load therefore scales linearly with node count and is spread
//! over the whole area — the regime region partitioning is built for (a
//! single-origin flood would pin all work onto one shard). Each cell
//! runs the same 100 ms window on the sequential `Simulator` and on
//! `ShardedSimulator` at 1/2/4 workers, reports events/s, and pins the
//! event count against the sequential leg (the conservative protocol
//! may not change what gets simulated). The freeze/partition step is
//! excluded from the timed region — it is a one-off O(n log n) sort.
//!
//! Speedup is wall-clock relative to the sequential engine at the same
//! scale; reaching the ≥3× target at 4 workers needs ≥4 physical cores
//! (on fewer cores the parallel legs time-slice and the column reads
//! ≈1/workers). Set `T6_SMOKE=1` for the small single-cell CI variant
//! and `BENCH_JSON=<path>` to append one machine-readable line per leg.

use std::time::Instant;

use qosc_netsim::{
    Area, Ctx, Mobility, NetApp, NodeId, ShardedSimulator, SimConfig, SimDuration, SimTime,
    Simulator,
};

use crate::table::{f, Table};

fn smoke() -> bool {
    std::env::var("T6_SMOKE").is_ok_and(|v| v != "0")
}

/// Square metres per node; constant density keeps the mean degree
/// independent of scale so events grow linearly with the node count.
const AREA_PER_NODE: f64 = 600.0;
const TICK: SimDuration = SimDuration::millis(10);

/// Periodic beacon app: broadcast one 64-byte message per tick, re-arm,
/// sink all deliveries.
struct Gossip;

impl NetApp<u32> for Gossip {
    fn on_message(&mut self, _ctx: &mut Ctx<'_, u32>, _at: NodeId, _from: NodeId, _msg: &u32) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_, u32>, at: NodeId, token: u64) {
        ctx.broadcast(at, 64, 0u32);
        ctx.timer(at, TICK, token);
    }
}

fn config(nodes: usize) -> SimConfig {
    let side = (nodes as f64 * AREA_PER_NODE).sqrt();
    SimConfig {
        area: Area::new(side, side),
        seed: 0x76_0001,
        ..Default::default()
    }
}

/// Staggers node timers across one tick so the event stream is smooth
/// in time as well as space.
fn stagger(i: usize) -> SimDuration {
    SimDuration::micros(1 + (i as u64 * 997) % TICK.as_micros())
}

/// One timed leg: `workers = None` runs the sequential `Simulator`,
/// `Some(w)` the sharded engine. Returns (events processed, wall s).
fn leg(nodes: usize, workers: Option<usize>, window: SimTime) -> (u64, f64) {
    match workers {
        None => {
            let mut sim = Simulator::new(config(nodes));
            for i in 0..nodes {
                let id = sim.add_node_random(Mobility::Static);
                sim.schedule_timer(id, stagger(i), 0);
            }
            let t0 = Instant::now();
            let n = sim.run_until(&mut Gossip, window);
            (n, t0.elapsed().as_secs_f64())
        }
        Some(w) => {
            let mut sim = ShardedSimulator::new(config(nodes), w);
            for i in 0..nodes {
                let id = sim.add_node_random(Mobility::Static);
                sim.schedule_timer(id, stagger(i), 0);
            }
            // Freeze (spatial sort + partition) outside the timed region.
            let mut apps: Vec<Gossip> = (0..sim.shard_count()).map(|_| Gossip).collect();
            let t0 = Instant::now();
            let n = sim.run_until(&mut apps, window);
            (n, t0.elapsed().as_secs_f64())
        }
    }
}

/// Appends one machine-readable line per leg when `BENCH_JSON` is set
/// (same file and line discipline as the criterion-shim benches).
fn emit_json(nodes: usize, engine: &str, workers: usize, events: u64, wall: f64, speedup: f64) {
    let json = format!(
        "{{\"benchmark\":\"t6/gossip-n{nodes}-{engine}-w{workers}\",\
         \"nodes\":{nodes},\"workers\":{workers},\"events\":{events},\
         \"wall_ms\":{:.3},\"events_per_s\":{:.0},\"speedup\":{speedup:.3}}}",
        wall * 1e3,
        events as f64 / wall.max(1e-9),
    );
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    let path = std::path::Path::new(&path);
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        Ok(mut file) => {
            use std::io::Write as _;
            let _ = writeln!(file, "{json}");
        }
        Err(e) => eprintln!("BENCH_JSON: cannot append to {}: {e}", path.display()),
    }
}

/// Runs T6 and returns its table.
pub fn run() -> Table {
    let mut table = Table::new(
        "T6: sharded-DES scaling on uniform beacon gossip at constant density \
         (events/s and wall-clock speedup vs the sequential engine; the 4-worker \
         leg needs >=4 physical cores to show its >=3x target)",
        &[
            "nodes",
            "engine",
            "workers",
            "events",
            "wall_ms",
            "events_per_s",
            "speedup",
        ],
    );
    let (node_counts, window): (&[usize], SimTime) = if smoke() {
        (&[128], SimTime(30_000))
    } else {
        (&[1024, 4096], SimTime(100_000))
    };
    for &nodes in node_counts {
        let (seq_events, seq_wall) = leg(nodes, None, window);
        emit_json(nodes, "seq", 1, seq_events, seq_wall, 1.0);
        table.row(vec![
            nodes.to_string(),
            "des".to_string(),
            "1".to_string(),
            seq_events.to_string(),
            f(seq_wall * 1e3),
            f(seq_events as f64 / seq_wall.max(1e-9)),
            f(1.0),
        ]);
        for workers in [1usize, 2, 4] {
            let (events, wall) = leg(nodes, Some(workers), window);
            assert_eq!(
                events, seq_events,
                "{nodes} nodes, {workers} workers: sharded engine processed a \
                 different event count than the sequential engine"
            );
            let speedup = seq_wall / wall.max(1e-9);
            emit_json(nodes, "sharded", workers, events, wall, speedup);
            table.row(vec![
                nodes.to_string(),
                "des-sharded".to_string(),
                workers.to_string(),
                events.to_string(),
                f(wall * 1e3),
                f(events as f64 / wall.max(1e-9)),
                f(speedup),
            ]);
        }
    }
    table
}
