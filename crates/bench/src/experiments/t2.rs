//! T2 — ablation of the eq. 3 weight scheme.
//!
//! Eq. 3's linear rank map `w_k = (n−k+1)/n` is one of many ways to turn a
//! qualitative preference order into weights. We re-run winner selection
//! under uniform and harmonic schemes (and the signed paper-literal dif of
//! eq. 5) and re-score every outcome under the default evaluator so the
//! numbers are comparable: how often does the alternative pick different
//! winners, and how much user-side distance does it cost or save?

use qosc_baselines::{protocol_emulation, Allocation, Instance};
use qosc_core::{DifMode, EvalConfig, Evaluator, TieBreak, WeightScheme};
use qosc_workloads::{AppTemplate, PopulationConfig};

use crate::instances::population_instance;
use crate::table::{f, mean, replicate, Table};

const REPS: u64 = 40;
const NODES: usize = 8;
const TASKS: usize = 3;

/// Re-scores an allocation's placements under the reference evaluator.
fn rescore(inst: &Instance, alloc: &Allocation) -> f64 {
    let reference = Evaluator::default();
    let mut total = 0.0;
    for (task, p) in &alloc.placements {
        let t = inst
            .tasks
            .iter()
            .find(|t| t.id == *task)
            .expect("placement refers to an instance task");
        total += reference
            .distance_of_levels(&t.spec, &t.request, &p.levels)
            .expect("placed levels are in-domain");
    }
    total
}

/// Runs T2 and returns its table.
pub fn run() -> Table {
    let mut table = Table::new(
        "T2: weight-scheme / dif-mode ablation (rescored under eq.3 + |dif|)",
        &[
            "scheme",
            "mean_rescored_distance",
            "winner_agreement",
            "mean_members",
        ],
    );
    let variants: Vec<(&str, EvalConfig)> = vec![
        (
            "paper_linear",
            EvalConfig {
                weights: WeightScheme::PaperLinear,
                dif: DifMode::Absolute,
            },
        ),
        (
            "uniform",
            EvalConfig {
                weights: WeightScheme::Uniform,
                dif: DifMode::Absolute,
            },
        ),
        (
            "harmonic",
            EvalConfig {
                weights: WeightScheme::Harmonic,
                dif: DifMode::Absolute,
            },
        ),
        (
            "signed_literal",
            EvalConfig {
                weights: WeightScheme::PaperLinear,
                dif: DifMode::SignedPaperLiteral,
            },
        ),
    ];
    let population = PopulationConfig::constrained();
    let results = replicate(REPS, |seed| {
        let mut base = population_instance(
            &population,
            NODES,
            AppTemplate::VideoConference,
            TASKS,
            0x72_0000 + seed,
        );
        let mut per_variant = Vec::new();
        let mut reference_assignments = None;
        for (_, eval) in &variants {
            base.eval = *eval;
            let alloc = protocol_emulation(&base, &TieBreak::default());
            let rescored = rescore(&base, &alloc);
            let winners: Vec<(qosc_spec::TaskId, u32)> =
                alloc.placements.iter().map(|(t, p)| (*t, p.node)).collect();
            if reference_assignments.is_none() {
                reference_assignments = Some(winners.clone());
            }
            let agree = reference_assignments
                .as_ref()
                .map(|r| *r == winners)
                .unwrap_or(true);
            per_variant.push((rescored, agree, alloc.distinct_members() as f64));
        }
        per_variant
    });
    for (i, (name, _)) in variants.iter().enumerate() {
        let ds: Vec<f64> = results.iter().map(|r| r[i].0).collect();
        let agreement =
            results.iter().filter(|r| r[i].1).count() as f64 / results.len().max(1) as f64;
        let members: Vec<f64> = results.iter().map(|r| r[i].2).collect();
        table.row(vec![
            name.to_string(),
            f(mean(&ds)),
            f(agreement),
            f(mean(&members)),
        ]);
    }
    table
}
