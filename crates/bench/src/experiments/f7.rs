//! F7 — formation robustness under message loss.
//!
//! Wireless links lose frames, especially near the range edge (§2's
//! "guaranteeing QoS in wireless networks is still a very challenging
//! problem"). The protocol tolerates loss through its deadline-driven
//! rounds: lost proposals shrink the candidate set, lost awards become
//! declines, and retry rounds re-solicit. We sweep a uniform loss floor
//! plus a grey-zone edge ramp and measure formation success, rounds used
//! and the resulting quality.

use qosc_core::NegoEvent;
use qosc_netsim::{Area, RadioModel, SimTime};
use qosc_workloads::{AppTemplate, PopulationConfig, Scenario, ScenarioConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::table::{f, mean, replicate, Table};

const REPS: u64 = 12;
const NODES: usize = 10;

/// Runs F7 and returns its table.
pub fn run() -> Table {
    let mut table = Table::new(
        "F7: formation under message loss (10 nodes, 2 tasks, 30 s window)",
        &[
            "loss_floor",
            "formed_ratio",
            "mean_distance",
            "mean_declines",
            "mean_messages",
        ],
    );
    for &loss in &[0.0, 0.05, 0.1, 0.2, 0.4, 0.6] {
        let results = replicate(REPS, |seed| {
            let config = ScenarioConfig {
                nodes: NODES,
                area: Area::new(60.0, 60.0),
                radio: RadioModel {
                    loss_floor: loss,
                    loss_at_edge: 0.2,
                    ..Default::default()
                },
                population: PopulationConfig::pure_adhoc(),
                seed: 0xF7_0000 + seed * 23 + (loss * 100.0) as u64,
                ..Default::default()
            };
            let mut scenario = Scenario::build(&config);
            let mut rng = ChaCha8Rng::seed_from_u64(0xF7_EEEE + seed);
            let svc = AppTemplate::Surveillance.service("svc", 2, &mut rng);
            scenario.submit(0, svc, SimTime(1_000));
            scenario.run_until(SimTime(30_000_000));
            let formed = scenario.events().iter().find_map(|e| match &e.event {
                NegoEvent::Formed { metrics, .. } => Some(metrics.clone()),
                _ => None,
            });
            let msgs = scenario.net_stats().messages_sent() as f64;
            match formed {
                Some(m) => (1.0, m.mean_distance(), m.declines as f64, msgs),
                None => (0.0, f64::NAN, 0.0, msgs),
            }
        });
        let formed: Vec<f64> = results.iter().map(|r| r.0).collect();
        let dist: Vec<f64> = results.iter().filter(|r| r.0 > 0.0).map(|r| r.1).collect();
        let declines: Vec<f64> = results.iter().map(|r| r.2).collect();
        let msgs: Vec<f64> = results.iter().map(|r| r.3).collect();
        table.row(vec![
            f(loss),
            f(mean(&formed)),
            f(mean(&dist)),
            f(mean(&declines)),
            f(mean(&msgs)),
        ]);
    }
    table
}
