//! The canonical experiment suite (see DESIGN.md §3 and EXPERIMENTS.md).
//!
//! The paper has no empirical tables/figures; every experiment here
//! operationalises one of its quantitative claims. Each module's `run()`
//! returns a [`Table`](crate::table) that the `experiments` binary
//! prints and writes to `results/*.csv`.

pub mod f1;
pub mod f2;
pub mod f3;
pub mod f4;
pub mod f5;
pub mod f6;
pub mod f7;
pub mod f8;
pub mod t1;
pub mod t2;
pub mod t3;
pub mod t4;
pub mod t5;
pub mod t6;
pub mod t7;

use crate::table::Table;

/// All experiment ids in canonical order.
pub const ALL: [&str; 15] = [
    "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
];

/// Runs one experiment by id.
pub fn run(id: &str) -> Option<Table> {
    Some(match id {
        "f1" => f1::run(),
        "f2" => f2::run(),
        "f3" => f3::run(),
        "f4" => f4::run(),
        "f5" => f5::run(),
        "f6" => f6::run(),
        "f7" => f7::run(),
        "f8" => f8::run(),
        "t1" => t1::run(),
        "t2" => t2::run(),
        "t3" => t3::run(),
        "t4" => t4::run(),
        "t5" => t5::run(),
        "t6" => t6::run(),
        "t7" => t7::run(),
        _ => return None,
    })
}
