//! T5 — open-loop saturation: offered load vs sustained formation rate
//! at ≥1024 nodes.
//!
//! Every other experiment submits a fixed batch and waits; T5 instead
//! drives the batched `DirectRuntime` with a *pre-sampled Poisson
//! arrival stream* (`qosc-load`): arrivals fire at their sampled
//! instants whether or not earlier negotiations have settled, so the
//! system is measured under offered load, not under the generator's
//! patience. Formed coalitions keep their resources for the rest of the
//! run (monitoring off, nothing dissolves), so offered rate translates
//! directly into concurrent held capacity: the saturation knee is where
//! cumulative admission outruns the pool and the formed ratio breaks
//! away from ~1.
//!
//! One cell = one offered rate of 4-task services over a fixed window
//! against a 64-deep organizer pool on the *constrained* population
//! (phones/PDAs only — the default dense 1024-node pool absorbs 40/s
//! of 2-task services with formed ratio 1.0, leaving no knee inside
//! any affordable grid). The sweep reports formed ratio, sustained
//! negotiations/sec and p50/p90/p99 formation latency from the
//! log-bucketed histogram, and marks the knee (highest offered rate
//! with formed ratio ≥ 0.95). Set `T5_SMOKE=1` for the one-cell CI
//! variant on a small dense pool.

use qosc_load::{LoadDriver, LoadPlan, LoadReport, PoissonArrivals, SaturationReport};
use qosc_netsim::SimDuration;
use qosc_workloads::{AppTemplate, Backend, ScenarioConfig};

use crate::table::{f, Table};

fn smoke() -> bool {
    std::env::var("T5_SMOKE").is_ok_and(|v| v != "0")
}

/// One offered-load cell: drive `rate` arrivals/s of `tasks`-task
/// services for `window` against `nodes` devices with an
/// `organizers`-deep pool.
fn cell(
    nodes: usize,
    organizers: u32,
    rate: f64,
    tasks: usize,
    population: qosc_workloads::PopulationConfig,
    window: SimDuration,
    seed: u64,
) -> LoadReport {
    let config = ScenarioConfig {
        organizer: qosc_core::OrganizerConfig {
            monitor: false, // formation cost only
            ..Default::default()
        },
        provider: qosc_core::ProviderConfig {
            heartbeat_interval: SimDuration::secs(3600),
            ..Default::default()
        },
        population,
        ..ScenarioConfig::dense(nodes, 0x75_0000 + seed * 31 + nodes as u64)
    };
    let mut rt = config.build_backend(Backend::DirectBatched);
    let plan = LoadPlan::sampled(
        &PoissonArrivals::new(rate),
        window,
        (0..organizers).collect(),
        AppTemplate::Surveillance,
        tasks,
        0x75_EEEE ^ seed ^ (rate * 16.0) as u64,
    );
    LoadDriver::new(&plan).run(rt.as_mut())
}

/// Appends one machine-readable line per sweep point when `BENCH_JSON`
/// is set (same file and line discipline as the criterion-shim benches).
fn emit_json(label: &str, offered: f64, report: &LoadReport) {
    let ms = |q: f64| {
        report
            .latency
            .quantile(q)
            .map_or(-1.0, |d| d.as_secs_f64() * 1e3)
    };
    let json = format!(
        "{{\"benchmark\":\"{label}\",\"offered_per_s\":{offered:.2},\
         \"submitted\":{},\"formed_ratio\":{:.4},\"sustained_per_s\":{:.3},\
         \"p50_ms\":{:.3},\"p90_ms\":{:.3},\"p99_ms\":{:.3},\"messages\":{}}}",
        report.submitted,
        report.formed_ratio(),
        report.sustained_per_s(),
        ms(0.50),
        ms(0.90),
        ms(0.99),
        report.messages,
    );
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    let path = std::path::Path::new(&path);
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        Ok(mut file) => {
            use std::io::Write as _;
            let _ = writeln!(file, "{json}");
        }
        Err(e) => eprintln!("BENCH_JSON: cannot append to {}: {e}", path.display()),
    }
}

/// Runs T5 and returns its table.
pub fn run() -> Table {
    let mut table = Table::new(
        "T5: open-loop saturation on batched DirectRuntime (Poisson arrivals of \
         4-task services, 64-organizer pool, constrained population; knee = \
         highest offered rate with formed ratio >= 0.95)",
        &[
            "nodes",
            "offered_per_s",
            "submitted",
            "formed_ratio",
            "sustained_per_s",
            "p50_ms",
            "p90_ms",
            "p99_ms",
            "messages",
            "knee",
        ],
    );
    // Full mode drives the constrained population (phones/PDAs only, a
    // fraction of the dense pool's aggregate CPU): the default dense
    // 1024-node pool absorbs this entire grid without breaking a sweat
    // (formed ratio 1.0 through 40/s of 2-task services), so the knee
    // would sit at the grid edge instead of inside it. Coalitions hold
    // their resources for the rest of the run, so cumulative admission
    // is what saturates the thin pool mid-grid.
    let (nodes, organizers, tasks, population, window, rates): (
        usize,
        u32,
        usize,
        qosc_workloads::PopulationConfig,
        SimDuration,
        &[f64],
    ) = if smoke() {
        (
            128,
            16,
            2,
            qosc_workloads::PopulationConfig::default(),
            SimDuration::secs(4),
            &[5.0],
        )
    } else {
        (
            1024,
            64,
            4,
            qosc_workloads::PopulationConfig::constrained(),
            SimDuration::secs(10),
            &[2.0, 5.0, 10.0, 20.0, 40.0],
        )
    };
    let mut reports: Vec<(f64, LoadReport)> = Vec::new();
    let sweep = SaturationReport::sweep(rates, |rate| {
        let report = cell(
            nodes,
            organizers,
            rate,
            tasks,
            population.clone(),
            window,
            7,
        );
        emit_json(
            &format!("t5/direct_batched-n{nodes}-r{rate}"),
            rate,
            &report,
        );
        reports.push((rate, report.clone()));
        report
    });
    let knee_rate = sweep.knee(0.95).map(|p| p.offered_per_s);
    for point in &sweep.points {
        let messages = reports
            .iter()
            .find(|(r, _)| *r == point.offered_per_s)
            .map_or(0, |(_, rep)| rep.messages);
        let ms = |d: Option<qosc_netsim::SimDuration>| match d {
            Some(d) => f(d.as_secs_f64() * 1e3),
            None => "-".to_string(),
        };
        table.row(vec![
            nodes.to_string(),
            f(point.offered_per_s),
            point.submitted.to_string(),
            f(point.formed_ratio),
            f(point.sustained_per_s),
            ms(point.p50),
            ms(point.p90),
            ms(point.p99),
            messages.to_string(),
            if Some(point.offered_per_s) == knee_rate {
                "knee".to_string()
            } else {
                String::new()
            },
        ]);
    }
    table
}
