//! T3 — ablation of the §4.2 tie-break order.
//!
//! The paper fixes evaluation value ≻ communication cost ≻ distinct
//! members. All six permutations are run on identical instances; the
//! table shows what each criterion order trades: distance, comm cost, and
//! coalition size.

use qosc_baselines::protocol_emulation;
use qosc_core::{Criterion, TieBreak};
use qosc_workloads::{AppTemplate, PopulationConfig};

use crate::instances::population_instance;
use crate::table::{f, mean, replicate, Table};

const REPS: u64 = 30;
const NODES: usize = 8;
const TASKS: usize = 4;

fn label(order: &[Criterion; 3]) -> String {
    order
        .iter()
        .map(|c| match c {
            Criterion::Distance => "D",
            Criterion::CommCost => "C",
            Criterion::Members => "M",
        })
        .collect::<Vec<_>>()
        .join(">")
}

/// Runs T3 and returns its table.
pub fn run() -> Table {
    let mut table = Table::new(
        "T3: tie-break order ablation (D=distance, C=comm cost, M=members)",
        &[
            "order",
            "mean_distance",
            "mean_comm_cost",
            "mean_members",
            "acceptance",
        ],
    );
    let population = PopulationConfig::constrained();
    let perms = TieBreak::permutations();
    let results = replicate(REPS, |seed| {
        let inst = population_instance(
            &population,
            NODES,
            AppTemplate::VideoConference,
            TASKS,
            0x73_0000 + seed,
        );
        perms
            .iter()
            .map(|tb| {
                let a = protocol_emulation(&inst, tb);
                (
                    a.total_distance(),
                    a.total_comm_cost(),
                    a.distinct_members() as f64,
                    a.acceptance_ratio(TASKS),
                )
            })
            .collect::<Vec<_>>()
    });
    for (i, tb) in perms.iter().enumerate() {
        table.row(vec![
            label(&tb.order),
            f(mean(&results.iter().map(|r| r[i].0).collect::<Vec<_>>())),
            f(mean(&results.iter().map(|r| r[i].1).collect::<Vec<_>>())),
            f(mean(&results.iter().map(|r| r[i].2).collect::<Vec<_>>())),
            f(mean(&results.iter().map(|r| r[i].3).collect::<Vec<_>>())),
        ]);
    }
    table
}
