//! T1 — protocol message complexity and negotiation latency.
//!
//! Paper §4.2's algorithm costs, per round: 1 CFP broadcast, one proposal
//! per capable neighbour, one award + one accept per task. We measure the
//! DES totals against that analytic expectation and record the simulated
//! formation latency.

use qosc_core::NegoEvent;
use qosc_netsim::SimTime;
use qosc_workloads::{AppTemplate, PopulationConfig, Scenario, ScenarioConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::table::{f, mean, replicate, Table};

/// Replications per point: full DES runs get expensive past 64 nodes
/// (every node formulates and proposes), so the tail of the sweep trades
/// replications for scale.
fn reps(nodes: usize) -> u64 {
    if nodes >= 128 {
        3
    } else {
        8
    }
}

const TASKS: usize = 2;

/// Runs T1 and returns its table.
pub fn run() -> Table {
    let mut table = Table::new(
        "T1: messages & formation latency vs pool size (2 tasks, monitoring off)",
        &[
            "nodes",
            "mean_messages",
            "analytic_messages",
            "mean_latency_ms",
            "formed_ratio",
        ],
    );
    for n in [2usize, 4, 8, 16, 32, 64, 128, 256] {
        let results = replicate(reps(n), |seed| {
            let organizer = qosc_core::OrganizerConfig {
                monitor: false, // formation cost only
                ..Default::default()
            };
            // Push heartbeats beyond the window so the counts isolate the
            // formation protocol itself.
            let provider = qosc_core::ProviderConfig {
                heartbeat_interval: qosc_netsim::SimDuration::secs(3600),
                ..Default::default()
            };
            let config = ScenarioConfig {
                organizer,
                provider,
                population: PopulationConfig::pure_adhoc(),
                // Dense preset: every node hears the CFP.
                ..ScenarioConfig::dense(n, 0x71_0000 + seed * 17 + n as u64)
            };
            let mut scenario = Scenario::build(&config);
            let mut rng = ChaCha8Rng::seed_from_u64(0x71_DDDD + seed);
            let svc = AppTemplate::Surveillance.service("svc", TASKS, &mut rng);
            scenario.submit(0, svc, SimTime(1_000));
            scenario.run_until(SimTime(30_000_000));
            let formed = scenario.host.events.iter().find_map(|e| match &e.event {
                NegoEvent::Formed { metrics, .. } => metrics
                    .formation_latency()
                    .map(|l| l.as_secs_f64() * 1000.0),
                _ => None,
            });
            let msgs = scenario.sim.stats().messages_sent() as f64;
            (msgs, formed)
        });
        let msgs: Vec<f64> = results.iter().map(|r| r.0).collect();
        let latencies: Vec<f64> = results.iter().filter_map(|r| r.1).collect();
        let formed_ratio = latencies.len() as f64 / results.len() as f64;
        // Analytic single-round cost: 1 CFP + n proposals (every node,
        // including the organizer, is capable in this dense scenario)
        // + TASKS awards + TASKS accepts.
        let analytic = 1.0 + n as f64 + 2.0 * TASKS as f64;
        table.row(vec![
            n.to_string(),
            f(mean(&msgs)),
            f(analytic),
            f(mean(&latencies)),
            f(formed_ratio),
        ]);
    }
    table
}
