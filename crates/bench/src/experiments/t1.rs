//! T1 — protocol message complexity and negotiation latency.
//!
//! Paper §4.2's algorithm costs, per round: 1 CFP broadcast, one proposal
//! per capable neighbour, one award + one accept per task. We measure the
//! totals against that analytic expectation and record the formation
//! latency.
//!
//! Since PR 3 the experiment drives one backend-agnostic scenario
//! description through the unified `qosc_core::runtime` API and runs it on
//! *both* the DES (geometry + latency) and the zero-latency Direct
//! backend: identical message counts across the two are themselves a
//! protocol-cost claim (the network model adds delay, not chatter).

use qosc_core::NegoEvent;
use qosc_netsim::SimTime;
use qosc_workloads::{AppTemplate, Backend, PopulationConfig, ScenarioConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::table::{f, mean, replicate, Table};

/// Replications per point: full DES runs get expensive past 64 nodes
/// (every node formulates and proposes), so the tail of the sweep trades
/// replications for scale.
fn reps(nodes: usize) -> u64 {
    if nodes >= 128 {
        3
    } else {
        8
    }
}

const TASKS: usize = 2;

/// One replication of the scenario description on one backend: returns
/// (messages sent, formation latency in ms if formed).
fn run_backend(config: &ScenarioConfig, backend: Backend, seed: u64) -> (f64, Option<f64>) {
    let mut rt = config.build_backend(backend);
    let mut rng = ChaCha8Rng::seed_from_u64(0x71_DDDD + seed);
    let svc = AppTemplate::Surveillance.service("svc", TASKS, &mut rng);
    rt.submit(0, svc, SimTime(1_000)).expect("node 0 exists");
    rt.run(SimTime(30_000_000));
    let formed = rt.events().iter().find_map(|e| match &e.event {
        NegoEvent::Formed { metrics, .. } => metrics
            .formation_latency()
            .map(|l| l.as_secs_f64() * 1000.0),
        _ => None,
    });
    (rt.messages_sent() as f64, formed)
}

/// Runs T1 and returns its table.
pub fn run() -> Table {
    let mut table = Table::new(
        "T1: messages & formation latency vs pool size (2 tasks, monitoring off)",
        &[
            "nodes",
            "des_messages",
            "direct_messages",
            "analytic_messages",
            "des_latency_ms",
            "direct_latency_ms",
            "des_formed_ratio",
        ],
    );
    for n in [2usize, 4, 8, 16, 32, 64, 128, 256] {
        let results = replicate(reps(n), |seed| {
            let organizer = qosc_core::OrganizerConfig {
                monitor: false, // formation cost only
                ..Default::default()
            };
            // Push heartbeats beyond the window so the counts isolate the
            // formation protocol itself.
            let provider = qosc_core::ProviderConfig {
                heartbeat_interval: qosc_netsim::SimDuration::secs(3600),
                ..Default::default()
            };
            let config = ScenarioConfig {
                organizer,
                provider,
                population: PopulationConfig::pure_adhoc(),
                // Dense preset: every node hears the CFP.
                ..ScenarioConfig::dense(n, 0x71_0000 + seed * 17 + n as u64)
            };
            let des = run_backend(&config, Backend::Des, seed);
            let direct = run_backend(&config, Backend::Direct, seed);
            (des.0, direct.0, des.1, direct.1)
        });
        let des_msgs: Vec<f64> = results.iter().map(|r| r.0).collect();
        let direct_msgs: Vec<f64> = results.iter().map(|r| r.1).collect();
        let des_lat: Vec<f64> = results.iter().filter_map(|r| r.2).collect();
        let direct_lat: Vec<f64> = results.iter().filter_map(|r| r.3).collect();
        // Formation success on the DES side (the Direct backend cannot
        // fail for network reasons, so its ratio is not a useful column).
        let des_formed_ratio = des_lat.len() as f64 / results.len() as f64;
        // Analytic single-round cost: 1 CFP + n proposals (every node,
        // including the organizer, is capable in this dense scenario)
        // + TASKS awards + TASKS accepts.
        let analytic = 1.0 + n as f64 + 2.0 * TASKS as f64;
        table.row(vec![
            n.to_string(),
            f(mean(&des_msgs)),
            f(mean(&direct_msgs)),
            f(analytic),
            f(mean(&des_lat)),
            f(mean(&direct_lat)),
            f(des_formed_ratio),
        ]);
    }
    table
}
