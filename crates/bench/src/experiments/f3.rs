//! F3 — the §5 degradation heuristic: reward vs resource availability.
//!
//! Paper eq. 1 trades local reward for schedulability, degrading the
//! attribute with the minimal reward decrease first. We sweep one node's
//! CPU from 5 % to 100 % of the preferred-level demand of a demanding
//! request and record the reward, the user-side distance (eq. 2) of the
//! resulting configuration, and how many degradation steps were needed.

use qosc_core::{formulate, Evaluator, LinearPenalty, QuadraticPenalty, RewardModel, TaskInput};
use qosc_resources::{AdmissionControl, ResourceKind, ResourceVector, SchedulingPolicy};
use qosc_workloads::AppTemplate;

use crate::table::{f, Table};

/// Runs F3 and returns its table.
pub fn run() -> Table {
    let mut table = Table::new(
        "F3: local reward & distance vs CPU availability (degradation heuristic)",
        &[
            "cpu_fraction",
            "reward_linear",
            "distance_linear",
            "steps_linear",
            "reward_quadratic",
            "distance_quadratic",
            "steps_quadratic",
        ],
    );
    let t = AppTemplate::VideoConference;
    let spec = t.spec();
    let req = t
        .request()
        .resolve(&spec)
        .expect("template request matches its spec");
    let model = t.demand_model();
    let evaluator = Evaluator::default();
    // Preferred-level CPU demand = the 100 % point.
    let qv = req
        .quality_vector(&spec, &vec![0; req.attr_count()])
        .expect("preferred levels are in-domain");
    let full_cpu = model.demand(&spec, &qv).get(ResourceKind::Cpu);

    for pct in [5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
        let cpu = full_cpu * pct as f64 / 100.0;
        let admission = AdmissionControl::new(
            SchedulingPolicy::Edf,
            ResourceVector::new(cpu, 512.0, 10_000.0, 60.0, 10_000.0),
        );
        let mut cells = vec![f(pct as f64 / 100.0)];
        for reward_model in [
            &LinearPenalty::default() as &dyn RewardModel,
            &QuadraticPenalty::default() as &dyn RewardModel,
        ] {
            let input = TaskInput {
                spec: &spec,
                request: &req,
                demand: model.as_ref(),
            };
            match formulate(&[input], &admission, reward_model) {
                Ok(out) => {
                    let d = evaluator
                        .distance_of_levels(&spec, &req, &out.levels[0])
                        .expect("formulated levels are in-domain");
                    cells.push(f(out.reward));
                    cells.push(f(d));
                    cells.push(out.degradations.to_string());
                }
                Err(_) => {
                    cells.push("infeasible".into());
                    cells.push("-".into());
                    cells.push("-".into());
                }
            }
        }
        table.row(cells);
    }
    table
}
