//! F1 — coalition vs single node: mean winning distance as the pool grows.
//!
//! Paper claim (§1, §4.1): "Coalition formation is necessary when a single
//! node cannot execute a specific service, but it may also be beneficial
//! when groups perform more efficiently." With more candidate nodes the
//! evaluation (§6) should find proposals closer to the user's preferences;
//! a single node's quality is flat (and often degraded).

use qosc_baselines::{protocol_emulation, single_node};
use qosc_core::TieBreak;
use qosc_workloads::{AppTemplate, PopulationConfig};

use crate::instances::population_instance;
use crate::table::{f, mean, replicate, Table};

/// Replications per point (fewer at the 128/256-node scale, where each
/// replication already aggregates hundreds of proposal evaluations).
fn reps(nodes: usize) -> u64 {
    if nodes >= 128 {
        10
    } else {
        30
    }
}

/// Tasks per service.
const TASKS: usize = 3;

/// Runs F1 and returns its table.
pub fn run() -> Table {
    let mut table = Table::new(
        "F1: mean proposal distance vs pool size (coalition vs single node)",
        &[
            "nodes",
            "coalition_dist",
            "single_dist",
            "coalition_accept",
            "single_accept",
            "improvement",
        ],
    );
    let population = PopulationConfig::constrained();
    for n in [1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
        let results = replicate(reps(n), |seed| {
            let inst = population_instance(
                &population,
                n,
                AppTemplate::VideoConference,
                TASKS,
                0xF1_0000 + seed * 1000 + n as u64,
            );
            let coalition = protocol_emulation(&inst, &TieBreak::default());
            let single = single_node(&inst);
            (
                coalition.mean_distance(),
                single.mean_distance(),
                coalition.acceptance_ratio(TASKS),
                single.acceptance_ratio(TASKS),
            )
        });
        let cd = mean(&results.iter().map(|r| r.0).collect::<Vec<_>>());
        let sd = mean(&results.iter().map(|r| r.1).collect::<Vec<_>>());
        let ca = mean(&results.iter().map(|r| r.2).collect::<Vec<_>>());
        let sa = mean(&results.iter().map(|r| r.3).collect::<Vec<_>>());
        let improvement = if cd > 0.0 { sd / cd } else { f64::INFINITY };
        table.row(vec![
            n.to_string(),
            f(cd),
            f(sd),
            f(ca),
            f(sa),
            f(improvement),
        ]);
    }
    table
}
