//! F1 — coalition vs single node: mean winning distance as the pool grows.
//!
//! Paper claim (§1, §4.1): "Coalition formation is necessary when a single
//! node cannot execute a specific service, but it may also be beneficial
//! when groups perform more efficiently." With more candidate nodes the
//! evaluation (§6) should find proposals closer to the user's preferences;
//! a single node's quality is flat (and often degraded).
//!
//! Three allocators over the *same* instance per replication: the offline
//! protocol emulation, the single-node baseline, and — since PR 3 — the
//! actual §4.2 protocol running on the zero-latency `DirectRuntime`
//! backend (retry rounds included), which validates that the emulation
//! tracks the real engines.

use qosc_baselines::{protocol_emulation, single_node};
use qosc_core::{NegoEvent, Runtime, TieBreak};
use qosc_netsim::SimTime;
use qosc_workloads::{AppTemplate, PopulationConfig};

use crate::instances::{instance_runtime, instance_service, population_instance};
use crate::table::{f, mean, replicate, Table};

/// Replications per point (fewer at the 128/256-node scale, where each
/// replication already aggregates hundreds of proposal evaluations).
fn reps(nodes: usize) -> u64 {
    if nodes >= 128 {
        10
    } else {
        30
    }
}

/// Tasks per service.
const TASKS: usize = 3;

/// Runs the real protocol on the Direct backend and returns
/// (mean distance over placed tasks, acceptance ratio).
fn protocol_run(inst: &qosc_baselines::Instance, template: AppTemplate) -> (f64, f64) {
    let mut rt = instance_runtime(inst);
    let svc = instance_service(inst, template, "svc");
    rt.submit(inst.requester, svc, SimTime(1_000))
        .expect("requester is registered");
    rt.run(SimTime(30_000_000));
    // The last settling event carries the final metrics (retry rounds
    // update them in place).
    let metrics = rt.events().iter().rev().find_map(|e| match &e.event {
        NegoEvent::Formed { metrics, .. } | NegoEvent::FormationIncomplete { metrics, .. } => {
            Some(metrics.clone())
        }
        _ => None,
    });
    match metrics {
        Some(m) => (m.mean_distance(), m.outcomes.len() as f64 / TASKS as f64),
        None => (f64::NAN, 0.0),
    }
}

/// Runs F1 and returns its table.
pub fn run() -> Table {
    let mut table = Table::new(
        "F1: mean proposal distance vs pool size (coalition vs single node)",
        &[
            "nodes",
            "coalition_dist",
            "single_dist",
            "protocol_dist",
            "coalition_accept",
            "single_accept",
            "protocol_accept",
            "improvement",
        ],
    );
    let population = PopulationConfig::constrained();
    for n in [1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
        let results = replicate(reps(n), |seed| {
            let inst = population_instance(
                &population,
                n,
                AppTemplate::VideoConference,
                TASKS,
                0xF1_0000 + seed * 1000 + n as u64,
            );
            let coalition = protocol_emulation(&inst, &TieBreak::default());
            let single = single_node(&inst);
            let (proto_dist, proto_accept) = protocol_run(&inst, AppTemplate::VideoConference);
            (
                coalition.mean_distance(),
                single.mean_distance(),
                coalition.acceptance_ratio(TASKS),
                single.acceptance_ratio(TASKS),
                proto_dist,
                proto_accept,
            )
        });
        let cd = mean(&results.iter().map(|r| r.0).collect::<Vec<_>>());
        let sd = mean(&results.iter().map(|r| r.1).collect::<Vec<_>>());
        let ca = mean(&results.iter().map(|r| r.2).collect::<Vec<_>>());
        let sa = mean(&results.iter().map(|r| r.3).collect::<Vec<_>>());
        // NaN (not 0.0 = "preferred quality") when no replication settled.
        let pds: Vec<f64> = results
            .iter()
            .map(|r| r.4)
            .filter(|d| d.is_finite())
            .collect();
        let pd = if pds.is_empty() { f64::NAN } else { mean(&pds) };
        let pa = mean(&results.iter().map(|r| r.5).collect::<Vec<_>>());
        let improvement = if cd > 0.0 { sd / cd } else { f64::INFINITY };
        table.row(vec![
            n.to_string(),
            f(cd),
            f(sd),
            f(pd),
            f(ca),
            f(sa),
            f(pa),
            f(improvement),
        ]);
    }
    table
}
