//! F6 — coalition size and the distinct-members tie-break.
//!
//! Paper claim (§4.2): "Coalition operation's complexity increases with
//! the number of distinct members", which is why member count is a
//! selection criterion. We sweep the task count and compare the paper's
//! tie-break order with a members-first order and with the member
//! criterion demoted, measuring distinct members and the distance paid.

use qosc_baselines::protocol_emulation;
use qosc_core::{Criterion, TieBreak};
use qosc_workloads::{AppTemplate, PopulationConfig};

use crate::instances::population_instance;
use crate::table::{f, mean, replicate, Table};

const REPS: u64 = 25;
const NODES: usize = 8;

/// Runs F6 and returns its table.
pub fn run() -> Table {
    let mut table = Table::new(
        "F6: distinct coalition members vs task count, by tie-break",
        &[
            "tasks",
            "paper_members",
            "paper_distance",
            "membersfirst_members",
            "membersfirst_distance",
        ],
    );
    use Criterion::*;
    let paper = TieBreak::default();
    let members_first = TieBreak {
        order: [Members, Distance, CommCost],
        epsilon: 1e-9,
    };
    let population = PopulationConfig::constrained();
    for tasks in [2usize, 4, 6, 8] {
        let results = replicate(REPS, |seed| {
            let inst = population_instance(
                &population,
                NODES,
                AppTemplate::Surveillance,
                tasks,
                0xF6_0000 + seed * 13 + tasks as u64,
            );
            let a = protocol_emulation(&inst, &paper);
            let b = protocol_emulation(&inst, &members_first);
            (
                a.distinct_members() as f64,
                a.mean_distance(),
                b.distinct_members() as f64,
                b.mean_distance(),
            )
        });
        table.row(vec![
            tasks.to_string(),
            f(mean(&results.iter().map(|r| r.0).collect::<Vec<_>>())),
            f(mean(&results.iter().map(|r| r.1).collect::<Vec<_>>())),
            f(mean(&results.iter().map(|r| r.2).collect::<Vec<_>>())),
            f(mean(&results.iter().map(|r| r.3).collect::<Vec<_>>())),
        ]);
    }
    table
}
