//! T7 — partition tolerance: formation recovery vs partition duration
//! and re-announce backoff policy at 256 nodes.
//!
//! Paper claim (§1/§5): negotiation must survive the "highly dynamic"
//! ad-hoc network, where connectivity is intermittent rather than
//! merely lossy. We cut the organizer off from the entire provider
//! population mid-CFP — after the round-0 call reaches the providers
//! but before their proposals reach back — hold the cut for a swept
//! duration, then heal, and measure whether the organizer's
//! timeout/backoff re-announce layer recovers the formation.
//!
//! Swept axes: partition duration (0 = no-partition baseline) × backoff
//! policy (`none` = immediate same-budget retries; doubling backoff at
//! two base delays). All cells share the same round budget, so the
//! comparison isolates *when* the retries are spent: immediate retries
//! burn the budget while the network is still dark, backoff stretches
//! it past the heal. Reported per cell: formed ratio, mean assigned
//! tasks, tasks recovered after the heal (assignments struck by a
//! settle that happened post-heal), settle time, and message overhead
//! relative to the same policy's no-partition baseline (the cost of
//! retrying into a dead network plus re-running the round after it
//! heals). Set `T7_SMOKE=1` for the small single-replicate CI variant
//! and `BENCH_JSON=<path>` to append one machine-readable line per
//! cell.

use qosc_core::strategy::{OrganizerStrategy, TimeoutBackoff};
use qosc_core::{NegoEvent, OrganizerConfig};
use qosc_netsim::{PartitionPlan, SimDuration, SimTime};
use qosc_workloads::{AppTemplate, PopulationConfig, Scenario, ScenarioConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::table::{f, mean, replicate, Table};

/// The split lands mid-CFP: the round-0 call (submitted at 1 ms,
/// ~2 ms latency) has reached the providers, their proposals have not
/// reached back.
const SPLIT_AT: SimTime = SimTime(4_000);
/// Enough tasks that the organizer's own co-located provider cannot
/// hold the whole service: during the cut it self-supplies what its
/// capacity allows, and the remainder is exactly what the retry layer
/// must recover from the far side after the heal.
const TASKS: usize = 10;

fn smoke() -> bool {
    std::env::var("T7_SMOKE").is_ok_and(|v| v != "0")
}

/// The swept backoff policies. Every policy keeps the same round
/// budget; only the spacing of the retries differs.
fn policies() -> Vec<(&'static str, OrganizerStrategy)> {
    let mut v = vec![("none", OrganizerStrategy::new())];
    if !smoke() {
        v.push((
            "backoff-50ms",
            OrganizerStrategy::new().with(TimeoutBackoff::doubling(SimDuration::millis(50), 10)),
        ));
    }
    v.push((
        "backoff-200ms",
        OrganizerStrategy::new().with(TimeoutBackoff::doubling(SimDuration::millis(200), 10)),
    ));
    v
}

struct Cell {
    formed: f64,
    assigned: f64,
    recovered: f64,
    settle_ms: f64,
    msgs: f64,
    cuts: f64,
}

/// One seeded run: organizer 0 cut off from every provider for
/// `duration` (zero = no partition installed), doubling/no backoff per
/// `chain`. Returns the cell metrics.
fn run_cell(nodes: usize, seed: u64, duration: SimDuration, chain: &OrganizerStrategy) -> Cell {
    let heal_at = SimTime(SPLIT_AT.0 + duration.as_micros());
    let partitions = if duration == SimDuration::ZERO {
        PartitionPlan::none()
    } else {
        let isolate_organizer = vec![vec![0u32], (1..nodes as u32).collect()];
        PartitionPlan::none()
            .partition_at(SPLIT_AT, isolate_organizer)
            .heal_at(heal_at)
    };
    let config = ScenarioConfig {
        organizer: OrganizerConfig {
            max_rounds: 12,
            chain: chain.clone(),
            ..OrganizerConfig::default()
        },
        // No fixed servers: with a homogeneous low-capacity population
        // the organizer's co-located provider cannot self-supply the
        // whole service, so formation genuinely depends on links the
        // partition cuts.
        population: PopulationConfig::pure_adhoc(),
        partitions,
        ..ScenarioConfig::dense(nodes, 0x77_0000 + seed * 131)
    };
    let mut scenario = Scenario::build(&config);
    let mut rng = ChaCha8Rng::seed_from_u64(0x77_CCCC + seed);
    let svc = AppTemplate::Surveillance.service("svc", TASKS, &mut rng);
    scenario.submit(0, svc, SimTime(1_000));
    scenario.run_until(SimTime(12_000_000));

    let settle = scenario.events().iter().find_map(|e| match &e.event {
        NegoEvent::Formed { metrics, .. } => Some((e.at, true, metrics)),
        NegoEvent::FormationIncomplete { metrics, .. } => Some((e.at, false, metrics)),
        _ => None,
    });
    let (at, formed, assigned, remote) = match settle {
        Some((at, formed, metrics)) => {
            let remote = metrics.outcomes.values().filter(|o| o.node != 0).count();
            (at, formed, metrics.outcomes.len(), remote)
        }
        None => (SimTime(0), false, 0, 0),
    };
    // With the organizer isolated, an award cannot cross the cut: every
    // assignment to a node other than the organizer's own provider in a
    // post-heal settle was necessarily struck after the heal.
    let recovered = if duration != SimDuration::ZERO && at > heal_at {
        remote
    } else {
        0
    };
    Cell {
        formed: formed as u64 as f64,
        assigned: assigned as f64,
        recovered: recovered as f64,
        settle_ms: at.0 as f64 / 1e3,
        msgs: scenario.net_stats().messages_sent() as f64,
        cuts: scenario.net_stats().partition_cuts as f64,
    }
}

/// Appends one machine-readable line per cell when `BENCH_JSON` is set
/// (same file and line discipline as the criterion-shim benches).
fn emit_json(nodes: usize, duration_ms: u64, policy: &str, c: &Cell, overhead: f64) {
    let json = format!(
        "{{\"benchmark\":\"t7/partition-n{nodes}-d{duration_ms}ms-{policy}\",\
         \"nodes\":{nodes},\"partition_ms\":{duration_ms},\"policy\":\"{policy}\",\
         \"formed_ratio\":{:.3},\"assigned_tasks\":{:.2},\"recovered_after_heal\":{:.2},\
         \"settle_ms\":{:.1},\"messages\":{:.0},\"partition_cuts\":{:.0},\
         \"msg_overhead\":{overhead:.3}}}",
        c.formed, c.assigned, c.recovered, c.settle_ms, c.msgs, c.cuts,
    );
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    let path = std::path::Path::new(&path);
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        Ok(mut file) => {
            use std::io::Write as _;
            let _ = writeln!(file, "{json}");
        }
        Err(e) => eprintln!("BENCH_JSON: cannot append to {}: {e}", path.display()),
    }
}

/// Runs T7 and returns its table.
pub fn run() -> Table {
    let mut table = Table::new(
        "T7: formation recovery vs partition duration x re-announce backoff \
         (organizer cut off mid-CFP, equal round budgets; msg overhead is vs \
         the same policy's no-partition baseline)",
        &[
            "nodes",
            "partition_ms",
            "policy",
            "formed_ratio",
            "assigned_tasks",
            "recovered_after_heal",
            "settle_ms",
            "mean_messages",
            "msg_overhead",
        ],
    );
    let (nodes, reps, durations): (usize, u64, &[SimDuration]) = if smoke() {
        (32, 1, &[SimDuration::ZERO, SimDuration::millis(300)])
    } else {
        (
            256,
            5,
            &[
                SimDuration::ZERO,
                SimDuration::millis(300),
                SimDuration::millis(1_200),
            ],
        )
    };
    for (policy, chain) in policies() {
        let mut baseline_msgs = f64::NAN;
        for &duration in durations {
            let cells = replicate(reps, |seed| run_cell(nodes, seed, duration, &chain));
            let cell = Cell {
                formed: mean(&cells.iter().map(|c| c.formed).collect::<Vec<_>>()),
                assigned: mean(&cells.iter().map(|c| c.assigned).collect::<Vec<_>>()),
                recovered: mean(&cells.iter().map(|c| c.recovered).collect::<Vec<_>>()),
                settle_ms: mean(&cells.iter().map(|c| c.settle_ms).collect::<Vec<_>>()),
                msgs: mean(&cells.iter().map(|c| c.msgs).collect::<Vec<_>>()),
                cuts: mean(&cells.iter().map(|c| c.cuts).collect::<Vec<_>>()),
            };
            assert!(
                duration == SimDuration::ZERO || cell.cuts > 0.0,
                "{policy}/{duration:?}: the partition never cut a delivery"
            );
            if duration == SimDuration::ZERO {
                baseline_msgs = cell.msgs;
            }
            let overhead = cell.msgs / baseline_msgs.max(1.0);
            let duration_ms = duration.as_micros() / 1_000;
            emit_json(nodes, duration_ms, policy, &cell, overhead);
            table.row(vec![
                nodes.to_string(),
                duration_ms.to_string(),
                policy.to_string(),
                f(cell.formed),
                f(cell.assigned),
                f(cell.recovered),
                f(cell.settle_ms),
                f(cell.msgs),
                f(overhead),
            ]);
        }
    }
    table
}
