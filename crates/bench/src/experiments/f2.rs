//! F2 — acceptance ratio under offered load.
//!
//! Paper claim (§4.1): cooperation lets the network "cope with limited
//! resources" and "fulfill the resource allocation requests from users".
//! We sweep the offered load (total preferred-level CPU demand as a
//! fraction of aggregate pool CPU) and measure the fraction of tasks each
//! policy places.

use qosc_baselines::{
    aggregate_cpu, greedy_least_loaded, protocol_emulation, random_alloc, single_node,
};
use qosc_core::TieBreak;
use qosc_resources::ResourceKind;
use qosc_workloads::{AppTemplate, PopulationConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::instances::population_instance;
use crate::table::{f, mean, replicate, Table};

const REPS: u64 = 10;
const NODES: usize = 6;

/// Preferred-level CPU demand of one video-conference task under the
/// catalog demand model.
fn task_cpu() -> f64 {
    let t = AppTemplate::Surveillance;
    let spec = t.spec();
    let req = t
        .request()
        .resolve(&spec)
        .expect("template request matches its spec");
    let qv = req
        .quality_vector(&spec, &vec![0; req.attr_count()])
        .expect("preferred levels are in-domain");
    t.demand_model().demand(&spec, &qv).get(ResourceKind::Cpu)
}

/// Runs F2 and returns its table.
pub fn run() -> Table {
    let mut table = Table::new(
        "F2: task acceptance ratio vs offered load (6 constrained nodes)",
        &["load", "coalition", "single", "greedy", "random"],
    );
    let population = PopulationConfig::constrained();
    let per_task = task_cpu();
    for load in [0.25, 0.5, 1.0, 1.5, 2.0, 3.0] {
        let results = replicate(REPS, |seed| {
            // Size the task count so preferred demand ≈ load × pool CPU.
            let probe = population_instance(
                &population,
                NODES,
                AppTemplate::Surveillance,
                1,
                0xF2_0000 + seed,
            );
            let pool = aggregate_cpu(&probe);
            let tasks = ((load * pool / per_task).round() as usize).max(1);
            let inst = population_instance(
                &population,
                NODES,
                AppTemplate::Surveillance,
                tasks,
                0xF2_0000 + seed,
            );
            let mut rng = ChaCha8Rng::seed_from_u64(0xF2_AAAA + seed);
            (
                protocol_emulation(&inst, &TieBreak::default()).acceptance_ratio(tasks),
                single_node(&inst).acceptance_ratio(tasks),
                greedy_least_loaded(&inst).acceptance_ratio(tasks),
                random_alloc(&inst, &mut rng).acceptance_ratio(tasks),
            )
        });
        table.row(vec![
            f(load),
            f(mean(&results.iter().map(|r| r.0).collect::<Vec<_>>())),
            f(mean(&results.iter().map(|r| r.1).collect::<Vec<_>>())),
            f(mean(&results.iter().map(|r| r.2).collect::<Vec<_>>())),
            f(mean(&results.iter().map(|r| r.3).collect::<Vec<_>>())),
        ]);
    }
    table
}
