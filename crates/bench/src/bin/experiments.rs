//! Regenerates the canonical experiment suite (F1–F7, T1–T4).
//!
//! Usage: `experiments [ids…]` — no arguments runs everything. Tables go
//! to stdout and to `results/<id>.csv`.

use std::path::PathBuf;
use std::time::Instant;

use qosc_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<String> = if args.is_empty() {
        experiments::ALL.iter().map(|s| s.to_string()).collect()
    } else {
        args.iter().map(|s| s.to_lowercase()).collect()
    };
    let out_dir = PathBuf::from("results");
    let mut failures = 0;
    for id in &ids {
        let started = Instant::now();
        match experiments::run(id) {
            Some(table) => {
                table.print();
                if let Err(e) = table.write_csv(&out_dir, id) {
                    eprintln!("warning: could not write results/{id}.csv: {e}");
                }
                println!("[{}] done in {:.1}s", id, started.elapsed().as_secs_f64());
            }
            None => {
                eprintln!(
                    "unknown experiment `{id}` (known: {})",
                    experiments::ALL.join(", ")
                );
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
