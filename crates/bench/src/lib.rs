//! # qosc-bench — experiment harness & benchmarks
//!
//! Regenerates every table/figure of the canonical evaluation suite
//! (DESIGN.md §3, EXPERIMENTS.md):
//!
//! ```text
//! cargo run -p qosc-bench --bin experiments --release          # all
//! cargo run -p qosc-bench --bin experiments --release -- f1 t3 # subset
//! cargo bench                                                  # B1–B5
//! ```
//!
//! Tables print to stdout and are written as CSV under `results/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod instances;
pub mod table;
