//! B9 — sharded-DES throughput: the region-partitioned conservative
//! parallel simulator against the sequential engine.
//!
//! Two groups:
//!
//! * `sharded_netsim` — a spatially uniform gossip workload (every node
//!   beacons once per tick, receivers stay silent) at constant density
//!   on the sequential `Simulator` and on `ShardedSimulator` at 1/2/4
//!   workers. The one-worker leg is the overhead gate for the sharding
//!   machinery itself: per-event cost must stay within ~10% of
//!   sequential, because the parallel path is only worth having if the
//!   serial floor does not move. Speedup above 1 on the 2/4-worker legs
//!   needs real cores — on a single-core runner they only guard against
//!   pathological slowdowns.
//! * `sharded_runtime` — B6's dense 256-node negotiation on
//!   `Backend::Des` vs `Backend::DesSharded`, i.e. the same comparison
//!   through the full coalition-formation stack.
//!
//! Emits one JSON line per bench via the criterion shim; set
//! `BENCH_JSON=<path>` to append them for run-over-run diffing and
//! `BENCH_SMOKE=1` for the 3-sample CI variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qosc_core::NegoEvent;
use qosc_netsim::{
    Area, Ctx, Mobility, NetApp, NodeId, ShardedSimulator, SimConfig, SimDuration, SimTime,
    Simulator,
};
use qosc_workloads::{AppTemplate, Backend, PopulationConfig, ScenarioConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Square metres per node; keeps the mean degree (~13 neighbours under
/// the default 50 m radio) independent of scale.
const AREA_PER_NODE: f64 = 600.0;
const TICK: SimDuration = SimDuration::millis(10);
const WINDOW: SimTime = SimTime(50_000);

/// Periodic beacon app: each node broadcasts one 64-byte message per
/// tick and re-arms its timer; deliveries are sinks. The load is spread
/// uniformly over the area — the regime region partitioning targets.
struct Gossip;

impl NetApp<u32> for Gossip {
    fn on_message(&mut self, _ctx: &mut Ctx<'_, u32>, _at: NodeId, _from: NodeId, _msg: &u32) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_, u32>, at: NodeId, token: u64) {
        ctx.broadcast(at, 64, 0u32);
        ctx.timer(at, TICK, token);
    }
}

fn config(nodes: usize) -> SimConfig {
    let side = (nodes as f64 * AREA_PER_NODE).sqrt();
    SimConfig {
        area: Area::new(side, side),
        seed: 1,
        ..Default::default()
    }
}

/// Staggers node timers across one tick so load is smooth in time as
/// well as space.
fn stagger(i: usize) -> SimDuration {
    SimDuration::micros(1 + (i as u64 * 997) % TICK.as_micros())
}

fn gossip_sequential(nodes: usize) -> u64 {
    let mut sim = Simulator::new(config(nodes));
    for i in 0..nodes {
        let id = sim.add_node_random(Mobility::Static);
        sim.schedule_timer(id, stagger(i), 0);
    }
    sim.run_until(&mut Gossip, WINDOW)
}

fn gossip_sharded(nodes: usize, workers: usize) -> u64 {
    let mut sim = ShardedSimulator::new(config(nodes), workers);
    for i in 0..nodes {
        let id = sim.add_node_random(Mobility::Static);
        sim.schedule_timer(id, stagger(i), 0);
    }
    let mut apps: Vec<Gossip> = (0..sim.shard_count()).map(|_| Gossip).collect();
    sim.run_until(&mut apps, WINDOW)
}

fn bench_sharded_netsim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sharded_netsim");
    g.sample_size(10);
    for nodes in [256usize, 1024] {
        g.bench_with_input(BenchmarkId::new("sequential", nodes), &nodes, |b, &n| {
            b.iter(|| gossip_sequential(n))
        });
        for workers in [1usize, 2, 4] {
            g.bench_with_input(
                BenchmarkId::new(format!("sharded_w{workers}"), nodes),
                &nodes,
                |b, &n| b.iter(|| gossip_sharded(n, workers)),
            );
        }
    }
    g.finish();
}

fn run_backend(backend: Backend, nodes: usize, seed: u64) -> usize {
    let config = ScenarioConfig {
        population: PopulationConfig::default(),
        ..ScenarioConfig::dense(nodes, seed)
    };
    let mut rt = config.build_backend(backend);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let svc = AppTemplate::Surveillance.service("svc", 2, &mut rng);
    rt.submit(0, svc, SimTime(1_000)).expect("node 0 exists");
    rt.run(SimTime(2_000_000));
    rt.events()
        .iter()
        .filter(|e| matches!(e.event, NegoEvent::Formed { .. }))
        .count()
}

fn bench_sharded_runtime(c: &mut Criterion) {
    let mut g = c.benchmark_group("sharded_runtime");
    g.sample_size(10);
    let nodes = 256usize;
    for (name, backend) in [
        ("des_dense", Backend::Des),
        ("des_sharded_w1_dense", Backend::DesSharded { workers: 1 }),
        ("des_sharded_w2_dense", Backend::DesSharded { workers: 2 }),
        ("des_sharded_w4_dense", Backend::DesSharded { workers: 4 }),
    ] {
        g.bench_with_input(BenchmarkId::new(name, nodes), &backend, |b, &backend| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_backend(backend, nodes, seed)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sharded_netsim, bench_sharded_runtime);
criterion_main!(benches);
