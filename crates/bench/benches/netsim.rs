//! B4 — raw simulator throughput: event processing with mobility ticks
//! and broadcast fan-out (the substrate's overhead floor).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qosc_netsim::{
    Area, Ctx, Mobility, NetApp, NodeId, SimConfig, SimDuration, SimTime, Simulator,
};

/// Rebroadcast app: every received message is re-broadcast with a TTL.
struct Flood;
impl NetApp<u32> for Flood {
    fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, at: NodeId, _from: NodeId, msg: &u32) {
        if *msg > 0 {
            ctx.broadcast(at, 64, msg - 1);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, u32>, at: NodeId, _token: u64) {
        ctx.broadcast(at, 64, 3);
    }
}

fn flood(nodes: usize, mobile: bool) -> u64 {
    let mut sim = Simulator::new(SimConfig {
        area: Area::new(100.0, 100.0),
        seed: 1,
        ..Default::default()
    });
    for _ in 0..nodes {
        sim.add_node_random(if mobile {
            Mobility::RandomWaypoint {
                min_speed: 1.0,
                max_speed: 5.0,
                pause: SimDuration::millis(100),
            }
        } else {
            Mobility::Static
        });
    }
    sim.schedule_timer(NodeId(0), SimDuration::millis(1), 0);
    sim.run_until(&mut Flood, SimTime(1_000_000))
}

fn bench_netsim(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim");
    g.sample_size(20);
    for nodes in [16usize, 64] {
        g.bench_with_input(BenchmarkId::new("flood_static", nodes), &nodes, |b, &n| {
            b.iter(|| flood(n, false))
        });
        g.bench_with_input(BenchmarkId::new("flood_mobile", nodes), &nodes, |b, &n| {
            b.iter(|| flood(n, true))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_netsim);
criterion_main!(benches);
