//! B7 — the zero-copy delivery plane: dense broadcast fan-out through the
//! DES heap, and neighbour queries through the spatial index.
//!
//! `des_broadcast_fanout/N` times one realistic CFP broadcast delivered
//! to all N−1 in-range neighbours: payloads ride the event heap behind
//! `Arc<Msg>` (one allocation per broadcast, pointer clones per delivery)
//! and the fan-out targets come from the `NeighbourIndex` grid instead of
//! an O(N) node-table scan. Compare run-over-run `BENCH_JSON` lines
//! against the pre-zero-copy numbers to see the per-recipient clone and
//! scan disappear.
//!
//! `neighbours_*` isolates the index itself: the dense case (everyone in
//! one cell block) bounds the constant factor, the sparse case shows the
//! asymptotic win over the full-table scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qosc_core::{Msg, NegoId, TaskAnnouncement};
use qosc_netsim::{
    Area, Ctx, Mobility, NetApp, NodeId, SimConfig, SimDuration, SimTime, Simulator,
};
use qosc_spec::{catalog, TaskId};

/// A realistic two-task CFP payload (the message a 256-node negotiation
/// actually fans out).
fn cfp() -> Msg {
    let ann = |i: u32| TaskAnnouncement {
        task: TaskId(i),
        spec: catalog::av_spec(),
        request: catalog::surveillance_request(),
        input_bytes: 100_000,
        output_bytes: 10_000,
    };
    Msg::CallForProposals {
        nego: NegoId {
            organizer: 0,
            seq: 0,
        },
        tasks: vec![ann(0), ann(1)],
        round: 0,
    }
}

/// App that broadcasts one CFP when its kick timer fires and counts
/// deliveries; receivers do no protocol work, so the measurement isolates
/// the delivery plane (fan-out, heap, dispatch), not the engines.
struct FanOut {
    delivered: u64,
}

impl NetApp<Msg> for FanOut {
    fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _at: NodeId, _from: NodeId, _msg: &Msg) {
        self.delivered += 1;
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, at: NodeId, _token: u64) {
        let msg = cfp();
        let bytes = msg.estimated_bytes();
        ctx.broadcast(at, bytes, msg);
    }
}

/// Dense population: everyone inside the default 50 m radio range.
fn dense_sim(nodes: usize) -> Simulator<Msg> {
    let mut sim = Simulator::new(SimConfig {
        area: Area::new(30.0, 30.0),
        seed: 7,
        ..Default::default()
    });
    for _ in 0..nodes {
        sim.add_node_random(Mobility::Static);
    }
    sim
}

fn bench_broadcast_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("delivery_plane");
    g.sample_size(20);
    for nodes in [64usize, 256] {
        g.bench_with_input(
            BenchmarkId::new("des_broadcast_fanout", nodes),
            &nodes,
            |b, &n| {
                let mut sim = dense_sim(n);
                let mut app = FanOut { delivered: 0 };
                let mut round = 0u64;
                b.iter(|| {
                    // One broadcast → n-1 deliveries drained through the
                    // heap; the sim is reused so setup stays out of the
                    // measurement.
                    round += 1;
                    sim.schedule_timer(NodeId(0), SimDuration::millis(1), round);
                    sim.run_until(&mut app, SimTime(u64::MAX));
                    app.delivered
                });
                assert!(app.delivered > 0);
            },
        );
    }
    g.finish();
}

fn bench_neighbour_queries(c: &mut Criterion) {
    let mut g = c.benchmark_group("delivery_plane");
    g.sample_size(20);
    // Dense: all 256 nodes share one cell block (worst-case candidates).
    g.bench_with_input(
        BenchmarkId::new("neighbours_dense", 256),
        &256usize,
        |b, &n| {
            let sim = dense_sim(n);
            let mut out = Vec::new();
            b.iter(|| {
                for i in 0..n {
                    sim.neighbours_into(NodeId(i as u32), &mut out);
                }
            });
        },
    );
    // Sparse: 256 nodes over 1 km², ~a handful per cell block — the case
    // the O(N)-scan-per-query used to dominate.
    g.bench_with_input(
        BenchmarkId::new("neighbours_sparse", 256),
        &256usize,
        |b, &n| {
            let mut sim: Simulator<Msg> = Simulator::new(SimConfig {
                area: Area::new(1000.0, 1000.0),
                seed: 7,
                ..Default::default()
            });
            for _ in 0..n {
                sim.add_node_random(Mobility::Static);
            }
            let mut out = Vec::new();
            b.iter(|| {
                for i in 0..n {
                    sim.neighbours_into(NodeId(i as u32), &mut out);
                }
            });
        },
    );
    g.finish();
}

criterion_group!(benches, bench_broadcast_fanout, bench_neighbour_queries);
criterion_main!(benches);
