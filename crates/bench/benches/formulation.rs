//! B2 — the §5 degradation heuristic at increasing scarcity and task
//! counts (cost grows with the number of degradation steps).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use qosc_core::{formulate, LinearPenalty, TaskInput};
use qosc_resources::{av_demand_model, AdmissionControl, ResourceVector, SchedulingPolicy};
use qosc_spec::catalog;

fn bench_formulation(c: &mut Criterion) {
    let spec = catalog::av_spec();
    let request = catalog::video_conference_request().resolve(&spec).unwrap();
    let model = av_demand_model(&spec);
    let reward = LinearPenalty::default();

    let mut g = c.benchmark_group("formulation");
    // Scarcity sweep: fewer MIPS = more degradation steps.
    for cpu in [500.0, 60.0, 30.0] {
        let admission = AdmissionControl::new(
            SchedulingPolicy::Edf,
            ResourceVector::new(cpu, 512.0, 10_000.0, 60.0, 10_000.0),
        );
        g.bench_with_input(
            BenchmarkId::new("single_task_cpu", cpu as u64),
            &cpu,
            |b, _| {
                b.iter(|| {
                    formulate(
                        &[TaskInput {
                            spec: black_box(&spec),
                            request: black_box(&request),
                            demand: &model,
                        }],
                        &admission,
                        &reward,
                    )
                })
            },
        );
    }
    // Joint task-set sweep at fixed capacity.
    for tasks in [1usize, 4, 16] {
        let admission = AdmissionControl::new(
            SchedulingPolicy::Edf,
            ResourceVector::new(120.0, 4096.0, 100_000.0, 600.0, 100_000.0),
        );
        let inputs: Vec<TaskInput<'_>> = (0..tasks)
            .map(|_| TaskInput {
                spec: &spec,
                request: &request,
                demand: &model,
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("joint_tasks", tasks), &tasks, |b, _| {
            b.iter(|| formulate(black_box(&inputs), &admission, &reward))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_formulation);
criterion_main!(benches);
