//! B2 — the §5 degradation heuristic at increasing scarcity and task
//! counts (cost grows with the number of degradation steps).
//!
//! Two legs per joint-bundle point: `engine` is the heap-driven
//! [`Formulator`] with a warm compile cache (what a provider actually
//! runs per CFP round), `reference` is the retained pre-engine path
//! ([`formulate_reference`]: penalty tables rebuilt per call, per-step
//! argmin scan, quality vector rebuilt per step). Their ratio is the
//! engine speedup tracked by CI's BENCH_JSON artifact.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use std::sync::Arc;

use qosc_core::{formulate, formulate_reference, Formulator, LinearPenalty, TaskInput};
use qosc_resources::{
    av_demand_model, AdmissionControl, DemandModel, ResourceKind, ResourceVector, SchedulingPolicy,
};
use qosc_spec::catalog;

fn admission(cpu: f64) -> AdmissionControl {
    AdmissionControl::new(
        SchedulingPolicy::Edf,
        ResourceVector::new(cpu, 1_000_000.0, 10_000_000.0, 60_000.0, 10_000_000.0),
    )
}

fn bench_formulation(c: &mut Criterion) {
    let spec = catalog::av_spec();
    let request = catalog::video_conference_request()
        .resolve(&spec)
        .expect("catalog request matches catalog spec");
    let model = av_demand_model(&spec);
    let reward = LinearPenalty::default();

    let mut g = c.benchmark_group("formulation");
    // Scarcity sweep: fewer MIPS = more degradation steps.
    for cpu in [500.0, 60.0, 30.0] {
        let admission = admission(cpu);
        g.bench_with_input(
            BenchmarkId::new("single_task_cpu", cpu as u64),
            &cpu,
            |b, _| {
                b.iter(|| {
                    formulate(
                        &[TaskInput {
                            spec: black_box(&spec),
                            request: black_box(&request),
                            demand: &model,
                        }],
                        &admission,
                        &reward,
                    )
                })
            },
        );
    }
    // Joint task-set sweep at fixed capacity.
    for tasks in [1usize, 4, 16] {
        let admission = admission(120.0);
        let inputs: Vec<TaskInput<'_>> = (0..tasks)
            .map(|_| TaskInput {
                spec: &spec,
                request: &request,
                demand: &model,
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("joint_tasks", tasks), &tasks, |b, _| {
            b.iter(|| formulate(black_box(&inputs), &admission, &reward))
        });
    }

    // Joint bundles, engine vs reference. Capacities derived from the
    // request's actual demand profile: `rich` fits every task at
    // preferred quality (zero degradation steps — measures setup cost),
    // `scarce` sits 2% above the fully-degraded bundle demand (near-
    // maximal degradation steps — measures the per-step loop).
    let preferred_cpu = {
        let qv = request
            .quality_vector(&spec, &vec![0; request.attr_count()])
            .expect("preferred levels are in-domain");
        model.demand(&spec, &qv).get(ResourceKind::Cpu)
    };
    let degraded_cpu = {
        let full: Vec<usize> = request.ladder_lengths().iter().map(|l| l - 1).collect();
        let qv = request
            .quality_vector(&spec, &full)
            .expect("floor levels are in-domain");
        model.demand(&spec, &qv).get(ResourceKind::Cpu)
    };
    let shared_model: Arc<dyn DemandModel> = Arc::new(av_demand_model(&spec));
    let announced = catalog::video_conference_request();
    for tasks in [8usize, 32, 64] {
        for (label, per_task) in [
            ("rich", preferred_cpu * 1.05),
            ("scarce", degraded_cpu * 1.02),
        ] {
            let admission = admission(per_task * tasks as f64);
            let inputs: Vec<TaskInput<'_>> = (0..tasks)
                .map(|_| TaskInput {
                    spec: &spec,
                    request: &request,
                    demand: &model,
                })
                .collect();
            // Sanity: both capacity points formulate successfully (the
            // scarce one after deep degradation).
            formulate_reference(&inputs, &admission, &reward).expect("bundle must fit");
            g.bench_with_input(
                BenchmarkId::new(format!("joint_{label}_reference"), tasks),
                &tasks,
                |b, _| b.iter(|| formulate_reference(black_box(&inputs), &admission, &reward)),
            );
            // The engine as providers run it: compile cache warmed by the
            // first CFP round, then one heap-driven pass per round.
            let mut engine = Formulator::new(Arc::new(LinearPenalty::default()));
            let prepared: Vec<_> = (0..tasks)
                .map(|_| {
                    engine
                        .prepare(&spec, &announced, &shared_model)
                        .expect("catalog request resolves")
                })
                .collect();
            let refs: Vec<&qosc_core::PreparedTask> = prepared.iter().map(|p| p.as_ref()).collect();
            g.bench_with_input(
                BenchmarkId::new(format!("joint_{label}_engine"), tasks),
                &tasks,
                |b, _| b.iter(|| engine.formulate(black_box(&refs), &admission)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_formulation);
criterion_main!(benches);
