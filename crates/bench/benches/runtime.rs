//! B6 — backend overhead of the unified runtime API: the same dense
//! 64- and 256-node negotiation on the zero-latency `DirectRuntime` vs
//! the full DES (`DesRuntime` with geometry, latency modelling and
//! per-delivery bookkeeping). The gap is the price of the network model
//! itself; the protocol work (formulation, evaluation, selection) is
//! identical on both by the cross-backend equivalence test. Both
//! backends ride the zero-copy delivery plane (`Arc<Msg>` payloads,
//! spatial-index fan-out on the DES side) — diff the `BENCH_JSON` lines
//! run-over-run to track it.
//!
//! Emits one JSON line per bench via the criterion shim; set
//! `BENCH_JSON=<path>` to append them for run-over-run diffing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qosc_core::NegoEvent;
use qosc_netsim::SimTime;
use qosc_workloads::{AppTemplate, Backend, PopulationConfig, ScenarioConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn run_backend(backend: Backend, nodes: usize, seed: u64) -> usize {
    let config = ScenarioConfig {
        population: PopulationConfig::default(),
        ..ScenarioConfig::dense(nodes, seed)
    };
    let mut rt = config.build_backend(backend);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let svc = AppTemplate::Surveillance.service("svc", 2, &mut rng);
    rt.submit(0, svc, SimTime(1_000)).expect("node 0 exists");
    rt.run(SimTime(2_000_000));
    rt.events()
        .iter()
        .filter(|e| matches!(e.event, NegoEvent::Formed { .. }))
        .count()
}

fn bench_runtime_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_backend");
    for nodes in [64usize, 256] {
        // A 256-node negotiation costs ~10× the 64-node one; fewer
        // samples keep the suite quick without losing the signal.
        g.sample_size(if nodes >= 256 { 10 } else { 20 });
        for backend in [Backend::Direct, Backend::DirectBatched, Backend::Des] {
            let name = match backend {
                Backend::Direct => "direct_dense",
                Backend::DirectBatched => "direct_batched_dense",
                Backend::Des => "des_dense",
                Backend::DesSharded { .. } | Backend::Actor => unreachable!(),
            };
            g.bench_with_input(BenchmarkId::new(name, nodes), &backend, |b, &backend| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    run_backend(backend, nodes, seed)
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_runtime_backends);
criterion_main!(benches);
