//! B8 — load-engine primitives: arrival samplers and the log-bucketed
//! latency histogram.
//!
//! The open-loop driver (T5) calls these on its hot path, once per
//! arrival and once per formed negotiation at up to thousands of
//! events per simulated second, so their unit costs bound how much
//! offered load the harness itself can generate. Three groups:
//! `arrival_sampler` (homogeneous Poisson, exact piecewise, thinned
//! diurnal — all sampling a 60 s window at ~1000 arrivals), and
//! `latency_histogram` record / quantile / merge. Emits one JSON line
//! per bench via the criterion shim; set `BENCH_JSON=<path>` to append
//! them for run-over-run diffing.

use criterion::{criterion_group, criterion_main, Criterion};

use qosc_load::{
    diurnal_thinned, ArrivalProcess, LatencyHistogram, PiecewiseRate, PoissonArrivals,
};
use qosc_netsim::{SimDuration, SimTime};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const WINDOW: SimTime = SimTime(60_000_000);

fn bench_samplers(c: &mut Criterion) {
    let mut g = c.benchmark_group("arrival_sampler");
    let poisson = PoissonArrivals::new(1000.0 / 60.0);
    g.bench_function("poisson_1k", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            PoissonArrivals::sample_until(
                &poisson,
                SimTime::ZERO,
                WINDOW,
                &mut ChaCha8Rng::seed_from_u64(seed),
            )
            .len()
        })
    });
    let piecewise = PiecewiseRate::diurnal(5.0, 30.0, SimDuration::secs(60));
    g.bench_function("piecewise_exact_1k", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            ArrivalProcess::sample_until(
                &piecewise,
                SimTime::ZERO,
                WINDOW,
                &mut ChaCha8Rng::seed_from_u64(seed),
            )
            .len()
        })
    });
    let thinned = diurnal_thinned(5.0, 30.0, SimDuration::secs(60));
    g.bench_function("thinned_diurnal_1k", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            ArrivalProcess::sample_until(
                &thinned,
                SimTime::ZERO,
                WINDOW,
                &mut ChaCha8Rng::seed_from_u64(seed),
            )
            .len()
        })
    });
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut g = c.benchmark_group("latency_histogram");
    // Latencies spanning several octaves, as a saturation sweep sees.
    let values: Vec<u64> = (0..10_000u64)
        .map(|i| 1_000 + (i * 7919) % 900_000)
        .collect();
    g.bench_function("record_10k", |b| {
        b.iter(|| {
            let mut h = LatencyHistogram::new();
            for &v in &values {
                h.record_us(v);
            }
            h.count()
        })
    });
    let mut filled = LatencyHistogram::new();
    for &v in &values {
        filled.record_us(v);
    }
    g.bench_function("quantile_p99", |b| {
        b.iter(|| filled.quantile(0.99).map(|d| d.as_micros()))
    });
    g.bench_function("merge", |b| {
        b.iter(|| {
            let mut h = filled.clone();
            h.merge(&filled);
            h.count()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_samplers, bench_histogram);
criterion_main!(benches);
