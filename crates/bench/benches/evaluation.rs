//! B1 — throughput of the §6 evaluation primitives: admissibility checks
//! and eq. 2 distance over batches of proposals, comparing the reference
//! per-proposal [`Evaluator`] against the precompiled
//! [`CompiledRequest`] tables and the one-call batch path.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use qosc_core::{CompiledRequest, EvalConfig, Evaluator};
use qosc_spec::{catalog, Value};

fn offers(n: usize) -> Vec<Vec<Value>> {
    (0..n)
        .map(|i| {
            vec![
                Value::Int(10 - (i % 10) as i64),
                Value::Int(if i % 2 == 0 { 3 } else { 1 }),
                Value::Int(8),
                Value::Int(8),
            ]
        })
        .collect()
}

fn bench_evaluation(c: &mut Criterion) {
    let spec = catalog::av_spec();
    let request = catalog::surveillance_request()
        .resolve(&spec)
        .expect("catalog request matches catalog spec");
    let evaluator = Evaluator::default();
    let compiled = CompiledRequest::compile(&spec, &request, EvalConfig::default());
    let batch = offers(1000);

    let mut g = c.benchmark_group("evaluation");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("distance_1000_proposals", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for o in &batch {
                acc += evaluator.distance(black_box(&spec), black_box(&request), black_box(o));
            }
            acc
        })
    });
    g.bench_function("compiled_distance_1000_proposals", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for o in &batch {
                acc += compiled.distance(black_box(o));
            }
            acc
        })
    });
    // The organizer's per-proposal round before compilation: admissibility
    // check + distance + running winner, one proposal at a time. Compare
    // against compiled_batch_1000_proposals for the like-for-like speedup.
    g.bench_function("reference_select_1000_proposals", |b| {
        b.iter(|| {
            let mut best: Option<(usize, f64)> = None;
            for (i, o) in batch.iter().enumerate() {
                if evaluator
                    .admissible(black_box(&request), black_box(o))
                    .is_err()
                {
                    continue;
                }
                let d = evaluator.distance(black_box(&spec), black_box(&request), black_box(o));
                match best {
                    Some((_, b)) if d >= b => {}
                    _ => best = Some((i, d)),
                }
            }
            best
        })
    });
    g.bench_function("compiled_batch_1000_proposals", |b| {
        b.iter(|| compiled.evaluate_batch(black_box(&batch)))
    });
    g.bench_function("admissibility_1000_proposals", |b| {
        b.iter(|| {
            let mut ok = 0;
            for o in &batch {
                if evaluator
                    .admissible(black_box(&request), black_box(o))
                    .is_ok()
                {
                    ok += 1;
                }
            }
            ok
        })
    });
    g.bench_function("compiled_admissibility_1000_proposals", |b| {
        b.iter(|| {
            let mut ok = 0;
            for o in &batch {
                if compiled.admissible(black_box(o)).is_ok() {
                    ok += 1;
                }
            }
            ok
        })
    });
    // Compile-once cost, to put the per-proposal savings in context.
    g.bench_function("compile_request", |b| {
        b.iter(|| {
            CompiledRequest::compile(black_box(&spec), black_box(&request), EvalConfig::default())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_evaluation);
criterion_main!(benches);
