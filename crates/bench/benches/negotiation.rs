//! B3 — a full negotiation round through the DES, end to end, at two pool
//! sizes. This is the wall-clock cost of everything: CFP fan-out,
//! per-provider formulation + reservation, evaluation, tie-break, awards.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qosc_core::NegoEvent;
use qosc_netsim::{Area, SimTime};
use qosc_workloads::{AppTemplate, PopulationConfig, Scenario, ScenarioConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn run_negotiation(nodes: usize, seed: u64) -> usize {
    let config = ScenarioConfig {
        nodes,
        area: Area::new(40.0, 40.0),
        population: PopulationConfig::default(),
        seed,
        ..Default::default()
    };
    let mut scenario = Scenario::build(&config);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let svc = AppTemplate::Surveillance.service("svc", 2, &mut rng);
    scenario.submit(0, svc, SimTime(1_000));
    scenario.run_until(SimTime(2_000_000));
    scenario
        .events()
        .iter()
        .filter(|e| matches!(e.event, NegoEvent::Formed { .. }))
        .count()
}

fn bench_negotiation(c: &mut Criterion) {
    let mut g = c.benchmark_group("negotiation");
    g.sample_size(20);
    for nodes in [8usize, 32] {
        g.bench_with_input(
            BenchmarkId::new("full_round_nodes", nodes),
            &nodes,
            |b, &n| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    run_negotiation(n, seed)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_negotiation);
criterion_main!(benches);
