//! B5 — allocation solver costs: the protocol emulations vs the
//! exhaustive optimum's exponential growth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qosc_baselines::{
    builders::conference_instance, exhaustive_optimal, protocol_emulation, protocol_emulation_with,
    ProposalStrategy,
};
use qosc_core::TieBreak;

fn bench_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("solvers");
    for nodes in [2usize, 3, 4] {
        let cpus: Vec<f64> = (0..nodes).map(|i| 40.0 + 60.0 * i as f64).collect();
        let inst = conference_instance(&cpus, 3);
        g.bench_with_input(
            BenchmarkId::new("exhaustive_nodes", nodes),
            &nodes,
            |b, _| b.iter(|| exhaustive_optimal(&inst, 10_000_000)),
        );
    }
    let inst = conference_instance(&[40.0, 100.0, 160.0, 220.0, 60.0, 120.0], 4);
    g.bench_function("protocol_joint_6n4t", |b| {
        b.iter(|| protocol_emulation(&inst, &TieBreak::default()))
    });
    g.bench_function("protocol_sequential_6n4t", |b| {
        b.iter(|| {
            protocol_emulation_with(&inst, &TieBreak::default(), ProposalStrategy::Sequential)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
