//! Property-based tests over the specification layer's invariants.

use proptest::prelude::*;
use qosc_spec::{Attribute, Dimension, Domain, LevelSpec, QosSpec, ServiceRequest, Value};

/// Strategy: a discrete integer domain of 1..=8 distinct values.
fn discrete_int_domain() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::hash_set(-1000i64..1000, 1..=8)
        .prop_map(|s| s.into_iter().collect::<Vec<_>>())
}

/// Strategy: a continuous integer interval.
fn continuous_int_domain() -> impl Strategy<Value = (i64, i64)> {
    (-1000i64..1000, 0i64..100).prop_map(|(min, w)| (min, min + w))
}

proptest! {
    /// pos(·) is a bijection on discrete domains: position(value_at(i)) == i.
    #[test]
    fn discrete_position_roundtrip(vals in discrete_int_domain()) {
        let d = Domain::DiscreteInt(vals.clone());
        d.validate().unwrap();
        for (i, v) in vals.iter().enumerate() {
            prop_assert_eq!(d.position(&Value::Int(*v)), Some(i));
        }
    }

    /// Every enumerated value is a member of its domain.
    #[test]
    fn enumerate_values_are_members(vals in discrete_int_domain(), steps in 1usize..20) {
        let d = Domain::DiscreteInt(vals);
        for v in d.enumerate(steps) {
            prop_assert!(d.contains(&v));
        }
    }

    /// Continuous enumeration also stays inside the interval and covers both
    /// endpoints when steps >= 2.
    #[test]
    fn continuous_enumerate_in_bounds((min, max) in continuous_int_domain(), steps in 2usize..20) {
        let d = Domain::ContinuousInt { min, max };
        let vs = d.enumerate(steps);
        for v in &vs {
            prop_assert!(d.contains(v));
        }
        prop_assert_eq!(vs.first(), Some(&Value::Int(min)));
        prop_assert_eq!(vs.last(), Some(&Value::Int(max)));
    }

    /// IntRange expansion preserves the preference direction and membership.
    #[test]
    fn int_range_expansion_is_monotone(from in -100i64..100, to in -100i64..100) {
        let vs = LevelSpec::int_range(from, to).expand();
        prop_assert_eq!(vs.len() as i64, (from - to).abs() + 1);
        prop_assert_eq!(vs.first(), Some(&Value::Int(from)));
        prop_assert_eq!(vs.last(), Some(&Value::Int(to)));
        // Strictly monotone towards `to`.
        for w in vs.windows(2) {
            let (a, b) = (w[0].as_i64().unwrap(), w[1].as_i64().unwrap());
            if from <= to { prop_assert_eq!(b, a + 1); } else { prop_assert_eq!(b, a - 1); }
        }
    }

    /// Resolution of a request whose values are drawn from the domain always
    /// succeeds, and the resolved ladders contain only domain members with
    /// the head equal to the first requested value.
    #[test]
    fn resolution_preserves_membership_and_head(
        vals in discrete_int_domain(),
        pick in proptest::collection::vec(0usize..8, 1..=8),
    ) {
        let domain_vals = vals.clone();
        let spec = QosSpec::builder("p")
            .dimension(Dimension::new("D", vec![
                Attribute::new("a", Domain::DiscreteInt(vals.clone())),
            ]))
            .build()
            .unwrap();
        let levels: Vec<LevelSpec> = pick
            .iter()
            .map(|i| LevelSpec::value(domain_vals[i % domain_vals.len()]))
            .collect();
        let head = match &levels[0] { LevelSpec::Value(v) => v.clone(), _ => unreachable!() };
        let req = ServiceRequest::builder("r")
            .dimension("D")
            .attribute("a", levels)
            .build();
        let r = req.resolve(&spec).unwrap();
        let ladder = &r.dimensions[0].attributes[0].levels;
        prop_assert_eq!(&ladder[0], &head);
        for v in ladder {
            prop_assert!(domain_vals.contains(&v.as_i64().unwrap()));
        }
        // Deduplicated.
        for (i, v) in ladder.iter().enumerate() {
            prop_assert!(!ladder[..i].contains(v));
        }
    }

    /// quality_vector(level_indexes) returns a vector whose requested
    /// entries equal the ladder values at those indexes.
    #[test]
    fn quality_vector_matches_ladder(idx0 in 0usize..10, idx1 in 0usize..2) {
        let spec = qosc_spec::catalog::av_spec();
        let req = qosc_spec::catalog::surveillance_request();
        let r = req.resolve(&spec).unwrap();
        let qv = r.quality_vector(&spec, &[idx0, idx1, 0, 0]).unwrap();
        let fr = spec.path("Video Quality", "frame_rate").unwrap();
        let cd = spec.path("Video Quality", "color_depth").unwrap();
        prop_assert_eq!(qv.get(&spec, fr), Some(&r.dimensions[0].attributes[0].levels[idx0]));
        prop_assert_eq!(qv.get(&spec, cd), Some(&r.dimensions[0].attributes[1].levels[idx1]));
    }
}
