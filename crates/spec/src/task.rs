//! Services and their independent tasks (paper §4.1).
//!
//! "There will be several services to be executed, each one with a set (for
//! now) of independent tasks `T`. Each service has specific QoS constraints,
//! defined by the user." A [`ServiceDef`] is the unit a user submits; each
//! [`TaskDef`] inside it is the unit the coalition assigns to exactly one
//! node.

use serde::{Deserialize, Serialize};

use crate::error::SpecError;
use crate::request::{ResolvedRequest, ServiceRequest};
use crate::spec::QosSpec;

/// Identifier of a task within its service (index order = submission order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// One independent task of a service: a name, the QoS spec it is an
/// instance of, and the user's preference-ordered request for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskDef {
    /// Task label.
    pub name: String,
    /// The application QoS spec this task is an instance of.
    pub spec: QosSpec,
    /// The user's preferences for this task (paper: `Q_i` + `P`).
    pub request: ServiceRequest,
    /// Input payload size in bytes that must be shipped to whichever node
    /// executes the task (drives the communication-cost tie-break, §4.2).
    pub input_bytes: u64,
    /// Output payload size shipped back to the requester.
    pub output_bytes: u64,
}

impl TaskDef {
    /// Resolves this task's request against its spec.
    pub fn resolve(&self) -> Result<ResolvedRequest, SpecError> {
        self.request.resolve(&self.spec)
    }
}

/// A user-submitted service: an ordered set of independent tasks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceDef {
    /// Service label.
    pub name: String,
    /// The independent tasks (paper §4.1's `T`).
    pub tasks: Vec<TaskDef>,
}

impl ServiceDef {
    /// Creates a service from its tasks.
    pub fn new(name: impl Into<String>, tasks: Vec<TaskDef>) -> Self {
        Self {
            name: name.into(),
            tasks,
        }
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Iterates `(TaskId, task)`.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &TaskDef)> {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (TaskId(i as u32), t))
    }

    /// Resolves every task's request, failing on the first invalid one.
    pub fn resolve_all(&self) -> Result<Vec<ResolvedRequest>, SpecError> {
        self.tasks.iter().map(TaskDef::resolve).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn service() -> ServiceDef {
        ServiceDef::new(
            "surveillance-feed",
            vec![
                TaskDef {
                    name: "camera-1".into(),
                    spec: catalog::av_spec(),
                    request: catalog::surveillance_request(),
                    input_bytes: 500_000,
                    output_bytes: 50_000,
                },
                TaskDef {
                    name: "camera-2".into(),
                    spec: catalog::av_spec(),
                    request: catalog::surveillance_request(),
                    input_bytes: 500_000,
                    output_bytes: 50_000,
                },
            ],
        )
    }

    #[test]
    fn service_resolves_all_tasks() {
        let s = service();
        assert_eq!(s.task_count(), 2);
        let resolved = s.resolve_all().unwrap();
        assert_eq!(resolved.len(), 2);
        assert_eq!(resolved[0].attr_count(), 4);
    }

    #[test]
    fn task_ids_follow_submission_order() {
        let s = service();
        let ids: Vec<_> = s.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![TaskId(0), TaskId(1)]);
        assert_eq!(TaskId(3).to_string(), "T3");
    }
}
