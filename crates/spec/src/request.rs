//! Preference-ordered service requests (paper §3.1).
//!
//! The user does not assign numeric utilities. Instead the request imposes a
//! *relative decreasing order of importance* on dimensions, on attributes
//! within each dimension, and on acceptable values within each attribute —
//! "elements identified by lower indexes are more important than elements
//! identified by higher indexes".
//!
//! The paper's remote-surveillance example is expressed as:
//!
//! ```
//! use qosc_spec::{ServiceRequest, LevelSpec, Value};
//! let req = ServiceRequest::builder("surveillance")
//!     .dimension("Video Quality")
//!         .attribute("frame_rate", vec![
//!             LevelSpec::int_range(10, 5),   // [10,...,5] preferred block
//!             LevelSpec::int_range(4, 1),    // [4,...,1] fallback block
//!         ])
//!         .attribute("color_depth", vec![
//!             LevelSpec::value(3), LevelSpec::value(1),
//!         ])
//!     .dimension("Audio Quality")
//!         .attribute("sampling_rate", vec![LevelSpec::value(8)])
//!         .attribute("sample_bits", vec![LevelSpec::value(8)])
//!     .build();
//! assert_eq!(req.dimensions().len(), 2);
//! ```
//!
//! A raw [`ServiceRequest`] is name-based; [`ServiceRequest::resolve`] binds
//! it to a [`QosSpec`], validating every name and value and expanding range
//! preferences into explicit ordered quality levels `Q_k1 ≻ Q_k2 ≻ …` —
//! the ladder the §5 degradation heuristic walks down.

use serde::{Deserialize, Serialize};

use crate::error::SpecError;
use crate::spec::{AttrPath, QosSpec, QualityVector};
use crate::value::{Value, F64};

/// One block of acceptable values for an attribute, in preference order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LevelSpec {
    /// A single acceptable value.
    Value(Value),
    /// An inclusive integer run `from → to`, enumerated in that direction
    /// (so `[10..5]` means 10 is preferred over 9 over … over 5, exactly
    /// the paper's `frame rate: [10,...,5]` notation).
    IntRange {
        /// Most-preferred end.
        from: i64,
        /// Least-preferred end (inclusive).
        to: i64,
    },
    /// An inclusive float run sampled at `steps` evenly spaced points from
    /// `from` (most preferred) to `to` (least preferred).
    FloatRange {
        /// Most-preferred end.
        from: f64,
        /// Least-preferred end (inclusive).
        to: f64,
        /// Number of sample points (≥ 2 to include both ends).
        steps: usize,
    },
}

impl LevelSpec {
    /// Single integer value.
    pub fn value(v: impl Into<Value>) -> Self {
        LevelSpec::Value(v.into())
    }

    /// Integer run in preference order (`from` preferred).
    pub fn int_range(from: i64, to: i64) -> Self {
        LevelSpec::IntRange { from, to }
    }

    /// Float run in preference order (`from` preferred).
    pub fn float_range(from: f64, to: f64, steps: usize) -> Self {
        LevelSpec::FloatRange { from, to, steps }
    }

    /// Expands the block into explicit values, preserving preference order.
    pub fn expand(&self) -> Vec<Value> {
        match self {
            LevelSpec::Value(v) => vec![v.clone()],
            LevelSpec::IntRange { from, to } => {
                if from <= to {
                    (*from..=*to).map(Value::Int).collect()
                } else {
                    (*to..=*from).rev().map(Value::Int).collect()
                }
            }
            LevelSpec::FloatRange { from, to, steps } => {
                let n = (*steps).max(1);
                if n == 1 {
                    return vec![Value::Float(F64::of(*from))];
                }
                (0..n)
                    .map(|i| {
                        let t = i as f64 / (n - 1) as f64;
                        Value::Float(F64::of(from + (to - from) * t))
                    })
                    .collect()
            }
        }
    }
}

/// Preference entry for one attribute: blocks of acceptable values in
/// decreasing preference order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttrPref {
    /// Attribute name (resolved against the spec's dimension).
    pub attribute: String,
    /// Acceptable-value blocks, most preferred first.
    pub levels: Vec<LevelSpec>,
}

/// Preference entry for one dimension: its attributes in decreasing
/// importance order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DimPref {
    /// Dimension name (resolved against the spec).
    pub dimension: String,
    /// Attribute preferences, most important first.
    pub attributes: Vec<AttrPref>,
}

/// A user's service request: dimensions in decreasing importance order,
/// attributes within each dimension likewise, and explicit acceptable
/// values per attribute (paper §3.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceRequest {
    /// Label for logs and experiment output.
    pub name: String,
    dimensions: Vec<DimPref>,
}

impl ServiceRequest {
    /// Starts building a request.
    pub fn builder(name: impl Into<String>) -> ServiceRequestBuilder {
        ServiceRequestBuilder {
            name: name.into(),
            dims: Vec::new(),
        }
    }

    /// Dimension preferences in decreasing importance order.
    pub fn dimensions(&self) -> &[DimPref] {
        &self.dimensions
    }

    /// Binds the request to a spec, validating names, types and domain
    /// membership, and expanding all level blocks.
    pub fn resolve(&self, spec: &QosSpec) -> Result<ResolvedRequest, SpecError> {
        let mut dims = Vec::with_capacity(self.dimensions.len());
        for (i, dp) in self.dimensions.iter().enumerate() {
            if self.dimensions[..i]
                .iter()
                .any(|x| x.dimension == dp.dimension)
            {
                return Err(SpecError::DuplicateRequestEntry(dp.dimension.clone()));
            }
            let (di, dim) = spec
                .dimension(&dp.dimension)
                .ok_or_else(|| SpecError::UnknownDimension(dp.dimension.clone()))?;
            let mut attrs = Vec::with_capacity(dp.attributes.len());
            for (j, ap) in dp.attributes.iter().enumerate() {
                if dp.attributes[..j]
                    .iter()
                    .any(|x| x.attribute == ap.attribute)
                {
                    return Err(SpecError::DuplicateRequestEntry(ap.attribute.clone()));
                }
                let (ai, attr) =
                    dim.attribute(&ap.attribute)
                        .ok_or_else(|| SpecError::UnknownAttribute {
                            dimension: dp.dimension.clone(),
                            attribute: ap.attribute.clone(),
                        })?;
                let mut levels = Vec::new();
                for block in &ap.levels {
                    for v in block.expand() {
                        if v.ty() != attr.domain.ty() {
                            return Err(SpecError::TypeMismatch {
                                dimension: dp.dimension.clone(),
                                attribute: ap.attribute.clone(),
                            });
                        }
                        if !attr.domain.contains(&v) {
                            return Err(SpecError::ValueOutsideDomain {
                                dimension: dp.dimension.clone(),
                                attribute: ap.attribute.clone(),
                                value: v.to_string(),
                            });
                        }
                        // Duplicate levels would make the degradation ladder
                        // re-visit a level; drop silently (first occurrence
                        // keeps the higher preference).
                        if !levels.contains(&v) {
                            levels.push(v);
                        }
                    }
                }
                if levels.is_empty() {
                    return Err(SpecError::EmptyPreference {
                        dimension: dp.dimension.clone(),
                        attribute: ap.attribute.clone(),
                    });
                }
                attrs.push(ResolvedAttrPref {
                    path: AttrPath::new(di, ai),
                    name: ap.attribute.clone(),
                    levels,
                });
            }
            if attrs.is_empty() {
                return Err(SpecError::EmptySpec);
            }
            dims.push(ResolvedDimPref {
                dim_index: di,
                name: dp.dimension.clone(),
                attributes: attrs,
            });
        }
        if dims.is_empty() {
            return Err(SpecError::EmptySpec);
        }
        Ok(ResolvedRequest {
            name: self.name.clone(),
            dimensions: dims,
        })
    }
}

/// Builder with a small fluent DSL mirroring the paper's indented request
/// notation: `.dimension(..)` then `.attribute(..)` calls attach to the most
/// recent dimension.
#[derive(Debug)]
pub struct ServiceRequestBuilder {
    name: String,
    dims: Vec<DimPref>,
}

impl ServiceRequestBuilder {
    /// Opens a new (next-less-important) dimension.
    pub fn dimension(mut self, name: impl Into<String>) -> Self {
        self.dims.push(DimPref {
            dimension: name.into(),
            attributes: Vec::new(),
        });
        self
    }

    /// Adds the next-less-important attribute of the current dimension.
    ///
    /// # Panics
    /// Panics if called before any `.dimension(..)`.
    pub fn attribute(mut self, name: impl Into<String>, levels: Vec<LevelSpec>) -> Self {
        self.dims
            .last_mut()
            .expect("attribute() requires a preceding dimension()")
            .attributes
            .push(AttrPref {
                attribute: name.into(),
                levels,
            });
        self
    }

    /// Finishes the (unvalidated) request; validation happens at
    /// [`ServiceRequest::resolve`].
    pub fn build(self) -> ServiceRequest {
        ServiceRequest {
            name: self.name,
            dimensions: self.dims,
        }
    }
}

/// An attribute preference bound to a spec: explicit ordered levels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResolvedAttrPref {
    /// Location of the attribute in the spec.
    pub path: AttrPath,
    /// Attribute name (for diagnostics).
    pub name: String,
    /// Quality ladder `Q_k1 ≻ Q_k2 ≻ …` — validated, deduplicated,
    /// most-preferred first. `levels[0]` is the user's preferred value
    /// `Pref_ki` of eq. 5.
    pub levels: Vec<Value>,
}

/// A dimension preference bound to a spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResolvedDimPref {
    /// Index of the dimension in the spec.
    pub dim_index: usize,
    /// Dimension name.
    pub name: String,
    /// Attribute preferences in decreasing importance (`i = 1…attr_k`).
    pub attributes: Vec<ResolvedAttrPref>,
}

/// A service request bound to a [`QosSpec`]: every name resolved, every
/// value validated, every range expanded. This is the object the
/// negotiation protocol ships and the heuristics consume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResolvedRequest {
    /// Request label.
    pub name: String,
    /// Dimensions in decreasing importance (`k = 1…n`).
    pub dimensions: Vec<ResolvedDimPref>,
}

impl ResolvedRequest {
    /// Number of requested dimensions (`n` of eq. 2).
    pub fn dim_count(&self) -> usize {
        self.dimensions.len()
    }

    /// Total number of requested attributes.
    pub fn attr_count(&self) -> usize {
        self.dimensions.iter().map(|d| d.attributes.len()).sum()
    }

    /// Iterates `(importance-rank pair, attribute preference)` over all
    /// requested attributes: `((k, i), pref)` with 0-based `k` (dimension
    /// rank) and `i` (attribute rank within the dimension).
    pub fn iter_attrs(&self) -> impl Iterator<Item = ((usize, usize), &ResolvedAttrPref)> {
        self.dimensions.iter().enumerate().flat_map(|(k, d)| {
            d.attributes
                .iter()
                .enumerate()
                .map(move |(i, a)| ((k, i), a))
        })
    }

    /// Looks up the preference entry for an attribute path.
    pub fn attr_pref(&self, path: AttrPath) -> Option<&ResolvedAttrPref> {
        self.dimensions
            .iter()
            .flat_map(|d| d.attributes.iter())
            .find(|a| a.path == path)
    }

    /// The user's most-preferred choice for every requested attribute, as
    /// `(path, value)` pairs — the §5 heuristic's starting point ("start by
    /// selecting user's preferred values for all QoS dimensions").
    pub fn preferred_choices(&self) -> Vec<(AttrPath, Value)> {
        self.iter_attrs()
            .map(|(_, a)| (a.path, a.levels[0].clone()))
            .collect()
    }

    /// Builds a full quality vector over `spec` from per-attribute level
    /// indexes into this request's ladders (one index per requested
    /// attribute, in [`ResolvedRequest::iter_attrs`] order). Attributes of
    /// the spec that the request does not mention are filled with the first
    /// value of their domain.
    ///
    /// Returns `None` if `level_indexes` has the wrong length or any index
    /// is out of range for its ladder.
    pub fn quality_vector(&self, spec: &QosSpec, level_indexes: &[usize]) -> Option<QualityVector> {
        if level_indexes.len() != self.attr_count() {
            return None;
        }
        // Default: first domain value for unmentioned attributes.
        let mut values: Vec<Value> = Vec::with_capacity(spec.attr_count());
        for path in spec.paths() {
            let attr = spec.attribute_at(path)?;
            values.push(attr.domain.enumerate(2).first()?.clone());
        }
        for ((_, a), &idx) in self.iter_attrs().zip(level_indexes.iter()) {
            let v = a.levels.get(idx)?.clone();
            let flat = spec.flat_index(a.path)?;
            values[flat] = v;
        }
        Some(QualityVector::from_values_unchecked(values))
    }

    /// The number of levels in each requested attribute's ladder, in
    /// `iter_attrs` order. Used by degradation loops and by exhaustive
    /// search.
    pub fn ladder_lengths(&self) -> Vec<usize> {
        self.iter_attrs().map(|(_, a)| a.levels.len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn surveillance() -> (QosSpec, ServiceRequest) {
        (catalog::av_spec(), catalog::surveillance_request())
    }

    #[test]
    fn level_spec_expansion_orders() {
        assert_eq!(
            LevelSpec::int_range(10, 5).expand(),
            (5..=10).rev().map(Value::Int).collect::<Vec<_>>()
        );
        assert_eq!(
            LevelSpec::int_range(1, 3).expand(),
            vec![Value::Int(1), Value::Int(2), Value::Int(3)]
        );
        assert_eq!(LevelSpec::value(7i64).expand(), vec![Value::Int(7)]);
        let f = LevelSpec::float_range(1.0, 0.0, 3).expand();
        assert_eq!(
            f,
            vec![Value::float(1.0), Value::float(0.5), Value::float(0.0)]
        );
    }

    #[test]
    fn paper_example_resolves() {
        let (spec, req) = surveillance();
        let r = req.resolve(&spec).unwrap();
        assert_eq!(r.dim_count(), 2);
        assert_eq!(r.attr_count(), 4);
        // frame_rate ladder: 10..5 then 4..1 => 10 levels, 10 first.
        let fr = &r.dimensions[0].attributes[0];
        assert_eq!(fr.levels.len(), 10);
        assert_eq!(fr.levels[0], Value::Int(10));
        assert_eq!(fr.levels[9], Value::Int(1));
        // color_depth ladder: 3 then 1.
        let cd = &r.dimensions[0].attributes[1];
        assert_eq!(cd.levels, vec![Value::Int(3), Value::Int(1)]);
    }

    #[test]
    fn preferred_choices_take_ladder_heads() {
        let (spec, req) = surveillance();
        let r = req.resolve(&spec).unwrap();
        let pref = r.preferred_choices();
        assert_eq!(pref.len(), 4);
        assert_eq!(pref[0].1, Value::Int(10)); // frame_rate
        assert_eq!(pref[1].1, Value::Int(3)); // color_depth
        assert_eq!(pref[2].1, Value::Int(8)); // sampling_rate
        assert_eq!(pref[3].1, Value::Int(8)); // sample_bits
    }

    #[test]
    fn resolve_rejects_unknown_names() {
        let (spec, _) = surveillance();
        let bad = ServiceRequest::builder("x")
            .dimension("Nope")
            .attribute("frame_rate", vec![LevelSpec::value(10i64)])
            .build();
        assert!(matches!(
            bad.resolve(&spec),
            Err(SpecError::UnknownDimension(_))
        ));

        let bad = ServiceRequest::builder("x")
            .dimension("Video Quality")
            .attribute("nope", vec![LevelSpec::value(10i64)])
            .build();
        assert!(matches!(
            bad.resolve(&spec),
            Err(SpecError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn resolve_rejects_out_of_domain_values() {
        let (spec, _) = surveillance();
        let bad = ServiceRequest::builder("x")
            .dimension("Video Quality")
            .attribute("frame_rate", vec![LevelSpec::value(45i64)])
            .build();
        assert!(matches!(
            bad.resolve(&spec),
            Err(SpecError::ValueOutsideDomain { .. })
        ));
        // color_depth 5 is not in {1,3,8,16,24}
        let bad = ServiceRequest::builder("x")
            .dimension("Video Quality")
            .attribute("color_depth", vec![LevelSpec::value(5i64)])
            .build();
        assert!(matches!(
            bad.resolve(&spec),
            Err(SpecError::ValueOutsideDomain { .. })
        ));
    }

    #[test]
    fn resolve_rejects_type_mismatch_and_duplicates() {
        let (spec, _) = surveillance();
        let bad = ServiceRequest::builder("x")
            .dimension("Video Quality")
            .attribute("frame_rate", vec![LevelSpec::value(10.0f64)])
            .build();
        assert!(matches!(
            bad.resolve(&spec),
            Err(SpecError::TypeMismatch { .. })
        ));

        let bad = ServiceRequest::builder("x")
            .dimension("Video Quality")
            .attribute("frame_rate", vec![LevelSpec::value(10i64)])
            .dimension("Video Quality")
            .attribute("frame_rate", vec![LevelSpec::value(10i64)])
            .build();
        assert!(matches!(
            bad.resolve(&spec),
            Err(SpecError::DuplicateRequestEntry(_))
        ));
    }

    #[test]
    fn overlapping_blocks_deduplicate_keeping_first_rank() {
        let (spec, _) = surveillance();
        let req = ServiceRequest::builder("x")
            .dimension("Video Quality")
            .attribute(
                "frame_rate",
                vec![LevelSpec::int_range(10, 8), LevelSpec::int_range(9, 6)],
            )
            .build();
        let r = req.resolve(&spec).unwrap();
        assert_eq!(
            r.dimensions[0].attributes[0].levels,
            [10, 9, 8, 7, 6].map(Value::Int).to_vec()
        );
    }

    #[test]
    fn quality_vector_from_level_indexes() {
        let (spec, req) = surveillance();
        let r = req.resolve(&spec).unwrap();
        let qv = r.quality_vector(&spec, &[0, 0, 0, 0]).unwrap();
        let fr = spec.path("Video Quality", "frame_rate").unwrap();
        assert_eq!(qv.get(&spec, fr), Some(&Value::Int(10)));
        // Degrade frame_rate two steps.
        let qv = r.quality_vector(&spec, &[2, 0, 0, 0]).unwrap();
        assert_eq!(qv.get(&spec, fr), Some(&Value::Int(8)));
        // Bad shapes.
        assert!(r.quality_vector(&spec, &[0, 0, 0]).is_none());
        assert!(r.quality_vector(&spec, &[99, 0, 0, 0]).is_none());
    }

    #[test]
    fn ladder_lengths_match_expansion() {
        let (spec, req) = surveillance();
        let r = req.resolve(&spec).unwrap();
        assert_eq!(r.ladder_lengths(), vec![10, 2, 1, 1]);
    }
}
