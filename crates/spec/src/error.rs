//! Error types for specification construction and request resolution.

use std::fmt;

/// Errors raised while validating a QoS specification or resolving a
/// service request against one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A discrete domain was declared with no values.
    EmptyDomain,
    /// A discrete domain lists the same value twice, which would make the
    /// Quality-Index `pos(·)` mapping (eq. 5) ambiguous.
    DuplicateDomainValue,
    /// A continuous interval with `min > max` or non-finite bounds.
    InvalidInterval,
    /// Two dimensions (or two attributes within one dimension) share a name.
    DuplicateName(String),
    /// A specification must declare at least one dimension, and every
    /// dimension at least one attribute.
    EmptySpec,
    /// The request names a dimension the specification does not declare.
    UnknownDimension(String),
    /// The request names an attribute the dimension does not declare.
    UnknownAttribute {
        /// Dimension the lookup happened in.
        dimension: String,
        /// The attribute that was not found.
        attribute: String,
    },
    /// A requested value lies outside the attribute's declared domain.
    ValueOutsideDomain {
        /// Dimension name.
        dimension: String,
        /// Attribute name.
        attribute: String,
        /// Rendering of the offending value.
        value: String,
    },
    /// A requested value has the wrong type for the attribute's domain.
    TypeMismatch {
        /// Dimension name.
        dimension: String,
        /// Attribute name.
        attribute: String,
    },
    /// An attribute preference expanded to zero acceptable levels.
    EmptyPreference {
        /// Dimension name.
        dimension: String,
        /// Attribute name.
        attribute: String,
    },
    /// The same dimension or attribute appears twice in one request.
    DuplicateRequestEntry(String),
    /// A dependency references an attribute path outside the specification.
    DanglingDependency,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::EmptyDomain => write!(f, "discrete domain has no values"),
            SpecError::DuplicateDomainValue => {
                write!(
                    f,
                    "discrete domain lists a value twice (pos would be ambiguous)"
                )
            }
            SpecError::InvalidInterval => write!(f, "continuous interval is empty or non-finite"),
            SpecError::DuplicateName(n) => write!(f, "duplicate name `{n}` in specification"),
            SpecError::EmptySpec => {
                write!(
                    f,
                    "specification needs >=1 dimension and >=1 attribute per dimension"
                )
            }
            SpecError::UnknownDimension(d) => write!(f, "request names unknown dimension `{d}`"),
            SpecError::UnknownAttribute {
                dimension,
                attribute,
            } => {
                write!(
                    f,
                    "request names unknown attribute `{attribute}` in dimension `{dimension}`"
                )
            }
            SpecError::ValueOutsideDomain {
                dimension,
                attribute,
                value,
            } => write!(
                f,
                "value `{value}` for `{dimension}.{attribute}` is outside the declared domain"
            ),
            SpecError::TypeMismatch {
                dimension,
                attribute,
            } => {
                write!(f, "value type mismatch for `{dimension}.{attribute}`")
            }
            SpecError::EmptyPreference {
                dimension,
                attribute,
            } => {
                write!(
                    f,
                    "preference for `{dimension}.{attribute}` expands to no levels"
                )
            }
            SpecError::DuplicateRequestEntry(n) => {
                write!(f, "request lists `{n}` more than once")
            }
            SpecError::DanglingDependency => {
                write!(
                    f,
                    "dependency references an attribute outside the specification"
                )
            }
        }
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SpecError::ValueOutsideDomain {
            dimension: "Video Quality".into(),
            attribute: "frame_rate".into(),
            value: "99".into(),
        };
        let s = e.to_string();
        assert!(s.contains("Video Quality"));
        assert!(s.contains("frame_rate"));
        assert!(s.contains("99"));
    }

    #[test]
    fn error_trait_object_safe() {
        let e: Box<dyn std::error::Error> = Box::new(SpecError::EmptyDomain);
        assert!(!e.to_string().is_empty());
    }
}
