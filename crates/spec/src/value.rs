//! Attribute values and their types.
//!
//! The paper (§3) defines `Val = {Type, Domain}` with
//! `Type = {integer, float, string}`. [`Value`] is one concrete value of an
//! attribute; [`ValueType`] is its type tag. Floats are wrapped in
//! [`F64`], a total-order wrapper, so values can live in ordered
//! collections and be compared deterministically.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A finite, non-NaN `f64` with a total order.
///
/// QoS attribute values are user-supplied configuration, not the result of
/// numeric computation, so rejecting NaN at construction is both safe and
/// ergonomic: every stored float is totally ordered and hashable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct F64(f64);

impl F64 {
    /// Wraps a float, returning `None` for NaN.
    pub fn new(v: f64) -> Option<Self> {
        if v.is_nan() {
            None
        } else {
            Some(Self(v))
        }
    }

    /// Wraps a float, panicking on NaN. Intended for literals in specs.
    pub fn of(v: f64) -> Self {
        Self::new(v).expect("QoS attribute values must not be NaN")
    }

    /// The underlying float.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for F64 {}

impl Ord for F64 {
    fn cmp(&self, other: &Self) -> Ordering {
        // Non-NaN by construction, so partial_cmp is total here.
        self.0.partial_cmp(&other.0).expect("F64 is never NaN")
    }
}

impl PartialOrd for F64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl std::hash::Hash for F64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // -0.0 and 0.0 compare equal; normalise so they hash equal too.
        let v = if self.0 == 0.0 { 0.0f64 } else { self.0 };
        v.to_bits().hash(state);
    }
}

impl fmt::Display for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<f64> for F64 {
    fn from(v: f64) -> Self {
        Self::of(v)
    }
}

/// Type tag of an attribute value (paper §3: `Type`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueType {
    /// Signed integer values (e.g. colour depth in bits).
    Integer,
    /// Floating-point values (e.g. a compression ratio).
    Float,
    /// Symbolic values (e.g. a codec name).
    String,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Integer => write!(f, "integer"),
            ValueType::Float => write!(f, "float"),
            ValueType::String => write!(f, "string"),
        }
    }
}

/// One concrete attribute value.
///
/// ```
/// use qosc_spec::Value;
/// let v = Value::Int(24);
/// assert_eq!(v.ty(), qosc_spec::ValueType::Integer);
/// assert_eq!(v.as_f64(), Some(24.0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    /// An integer value.
    Int(i64),
    /// A float value (total-ordered, never NaN).
    Float(F64),
    /// A string value. Order between strings follows the domain
    /// declaration, not lexicographic order; `Ord` here only provides a
    /// stable total order for collections.
    Str(String),
}

impl Value {
    /// Convenience constructor for float values.
    pub fn float(v: f64) -> Self {
        Value::Float(F64::of(v))
    }

    /// Convenience constructor for string values.
    pub fn str(v: impl Into<String>) -> Self {
        Value::Str(v.into())
    }

    /// The type tag of this value.
    pub fn ty(&self) -> ValueType {
        match self {
            Value::Int(_) => ValueType::Integer,
            Value::Float(_) => ValueType::Float,
            Value::Str(_) => ValueType::String,
        }
    }

    /// Numeric view of the value, if it has one. Used by the continuous
    /// branch of the evaluation metric (paper eq. 5).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(f.get()),
            Value::Str(_) => None,
        }
    }

    /// Integer view, if this is an integer value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn f64_rejects_nan() {
        assert!(F64::new(f64::NAN).is_none());
        assert!(F64::new(1.5).is_some());
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn f64_of_panics_on_nan() {
        let _ = F64::of(f64::NAN);
    }

    #[test]
    fn f64_total_order() {
        let mut v = vec![F64::of(3.0), F64::of(-1.0), F64::of(2.5)];
        v.sort();
        assert_eq!(v, vec![F64::of(-1.0), F64::of(2.5), F64::of(3.0)]);
    }

    #[test]
    fn f64_zero_hash_consistent() {
        assert_eq!(F64::of(0.0), F64::of(-0.0));
        assert_eq!(hash_of(&F64::of(0.0)), hash_of(&F64::of(-0.0)));
    }

    #[test]
    fn value_type_tags() {
        assert_eq!(Value::Int(1).ty(), ValueType::Integer);
        assert_eq!(Value::float(1.0).ty(), ValueType::Float);
        assert_eq!(Value::str("pcm").ty(), ValueType::String);
    }

    #[test]
    fn value_numeric_views() {
        assert_eq!(Value::Int(8).as_f64(), Some(8.0));
        assert_eq!(Value::float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::str("x").as_f64(), None);
        assert_eq!(Value::Int(8).as_i64(), Some(8));
        assert_eq!(Value::float(2.5).as_i64(), None);
        assert_eq!(Value::str("x").as_str(), Some("x"));
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Int(24).to_string(), "24");
        assert_eq!(Value::float(1.5).to_string(), "1.5");
        assert_eq!(Value::str("h264").to_string(), "h264");
    }

    #[test]
    fn value_from_conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(0.5f64), Value::float(0.5));
        assert_eq!(Value::from("a"), Value::str("a"));
    }
}
