//! Inter-attribute dependencies (paper §3: `Deps`).
//!
//! The paper defines `Deps = {Dep_ij}` with `Dep_ij = f(Val_ki, Val_kj)` —
//! constraints coupling the values of two (or more) attributes. §4.2 insists
//! the negotiation "has to be able to deal with those inter-dependencies,
//! reaching a coherent solution", so dependencies are first-class here and
//! are checked by proposal formulation and by admissibility tests.
//!
//! Three constraint shapes cover the couplings multimedia specs need:
//!
//! * [`DependencyKind::Implication`] — `a ∈ A ⇒ b ∈ B` (e.g. "24-bit colour
//!   requires frame rate ≤ 15").
//! * [`DependencyKind::Exclusion`] — `¬(a ∈ A ∧ b ∈ B)`.
//! * [`DependencyKind::LinearBudget`] — `Σ coeff_i · numeric(attr_i) ≤ max`
//!   (e.g. a pixel-rate budget coupling frame rate and colour depth).

use serde::{Deserialize, Serialize};

use crate::error::SpecError;
use crate::spec::{AttrPath, QosSpec, QualityVector};
use crate::value::Value;

/// The constraint body of a [`Dependency`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DependencyKind {
    /// If attribute `a` takes a value in `when_in`, attribute `b` must take
    /// a value in `require_in`.
    Implication {
        /// Antecedent attribute.
        a: AttrPath,
        /// Antecedent trigger set.
        when_in: Vec<Value>,
        /// Consequent attribute.
        b: AttrPath,
        /// Values `b` is then restricted to.
        require_in: Vec<Value>,
    },
    /// Attributes `a` and `b` may not simultaneously take values from
    /// `a_in` and `b_in`.
    Exclusion {
        /// First attribute.
        a: AttrPath,
        /// Forbidden set for `a`.
        a_in: Vec<Value>,
        /// Second attribute.
        b: AttrPath,
        /// Forbidden set for `b`.
        b_in: Vec<Value>,
    },
    /// `Σ coeff · value ≤ max` over numeric attributes. Non-numeric
    /// attributes are invalid here and rejected at validation time.
    LinearBudget {
        /// `(attribute, coefficient)` terms.
        terms: Vec<(AttrPath, f64)>,
        /// Inclusive upper bound on the weighted sum.
        max: f64,
    },
}

/// A named inter-attribute dependency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dependency {
    /// Human-readable label, used in diagnostics.
    pub name: String,
    /// The constraint body.
    pub kind: DependencyKind,
}

impl Dependency {
    /// Creates a named dependency.
    pub fn new(name: impl Into<String>, kind: DependencyKind) -> Self {
        Self {
            name: name.into(),
            kind,
        }
    }

    /// Checks that every referenced path exists in `spec` and that linear
    /// budgets only reference numeric attributes.
    pub fn validate(&self, spec: &QosSpec) -> Result<(), SpecError> {
        let check = |p: &AttrPath| -> Result<(), SpecError> {
            spec.attribute_at(*p)
                .map(|_| ())
                .ok_or(SpecError::DanglingDependency)
        };
        match &self.kind {
            DependencyKind::Implication { a, b, .. } | DependencyKind::Exclusion { a, b, .. } => {
                check(a)?;
                check(b)
            }
            DependencyKind::LinearBudget { terms, .. } => {
                for (p, _) in terms {
                    check(p)?;
                    let attr = spec.attribute_at(*p).expect("checked above");
                    if attr.domain.ty() == crate::value::ValueType::String {
                        return Err(SpecError::DanglingDependency);
                    }
                }
                Ok(())
            }
        }
    }

    /// Evaluates the constraint against a complete assignment.
    pub fn holds(&self, spec: &QosSpec, qv: &QualityVector) -> bool {
        let val = |p: AttrPath| qv.get(spec, p);
        match &self.kind {
            DependencyKind::Implication {
                a,
                when_in,
                b,
                require_in,
            } => match (val(*a), val(*b)) {
                (Some(va), Some(vb)) => !when_in.contains(va) || require_in.contains(vb),
                _ => false,
            },
            DependencyKind::Exclusion { a, a_in, b, b_in } => match (val(*a), val(*b)) {
                (Some(va), Some(vb)) => !(a_in.contains(va) && b_in.contains(vb)),
                _ => false,
            },
            DependencyKind::LinearBudget { terms, max } => {
                let mut sum = 0.0;
                for (p, c) in terms {
                    match val(*p).and_then(Value::as_f64) {
                        Some(x) => sum += c * x,
                        None => return false,
                    }
                }
                sum <= *max + 1e-9
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::spec::{Attribute, Dimension};

    fn spec_with(dep: Option<Dependency>) -> Result<QosSpec, SpecError> {
        let mut b = QosSpec::builder("s").dimension(Dimension::new(
            "Video",
            vec![
                Attribute::new("frame_rate", Domain::ContinuousInt { min: 1, max: 30 }),
                Attribute::new("color_depth", Domain::DiscreteInt(vec![1, 3, 8, 16, 24])),
            ],
        ));
        if let Some(d) = dep {
            b = b.dependency(d);
        }
        b.build()
    }

    fn qv(spec: &QosSpec, fr: i64, cd: i64) -> QualityVector {
        QualityVector::new(spec, vec![Value::Int(fr), Value::Int(cd)]).unwrap()
    }

    #[test]
    fn implication_high_depth_caps_frame_rate() {
        let dep = Dependency::new(
            "24bit caps fps",
            DependencyKind::Implication {
                a: AttrPath::new(0, 1),
                when_in: vec![Value::Int(24)],
                b: AttrPath::new(0, 0),
                require_in: (1..=15).map(Value::Int).collect(),
            },
        );
        let s = spec_with(Some(dep)).unwrap();
        assert!(qv(&s, 10, 24).satisfies_dependencies(&s));
        assert!(!qv(&s, 30, 24).satisfies_dependencies(&s));
        // Antecedent not triggered: anything goes.
        assert!(qv(&s, 30, 8).satisfies_dependencies(&s));
    }

    #[test]
    fn exclusion_blocks_combination() {
        let dep = Dependency::new(
            "no 30fps at 24bit",
            DependencyKind::Exclusion {
                a: AttrPath::new(0, 0),
                a_in: vec![Value::Int(30)],
                b: AttrPath::new(0, 1),
                b_in: vec![Value::Int(24)],
            },
        );
        let s = spec_with(Some(dep)).unwrap();
        assert!(!qv(&s, 30, 24).satisfies_dependencies(&s));
        assert!(qv(&s, 30, 16).satisfies_dependencies(&s));
        assert!(qv(&s, 29, 24).satisfies_dependencies(&s));
    }

    #[test]
    fn linear_budget_pixel_rate() {
        // frame_rate + 0.5*color_depth <= 35
        let dep = Dependency::new(
            "pixel budget",
            DependencyKind::LinearBudget {
                terms: vec![(AttrPath::new(0, 0), 1.0), (AttrPath::new(0, 1), 0.5)],
                max: 35.0,
            },
        );
        let s = spec_with(Some(dep)).unwrap();
        assert!(qv(&s, 20, 24).satisfies_dependencies(&s)); // 32 <= 35
        assert!(!qv(&s, 30, 24).satisfies_dependencies(&s)); // 42 > 35
    }

    #[test]
    fn validate_rejects_dangling_paths() {
        let dep = Dependency::new(
            "dangling",
            DependencyKind::Implication {
                a: AttrPath::new(5, 0),
                when_in: vec![],
                b: AttrPath::new(0, 0),
                require_in: vec![],
            },
        );
        assert_eq!(
            spec_with(Some(dep)).unwrap_err(),
            SpecError::DanglingDependency
        );
    }

    #[test]
    fn validate_rejects_string_attr_in_budget() {
        let dep = Dependency::new(
            "bad budget",
            DependencyKind::LinearBudget {
                terms: vec![(AttrPath::new(0, 0), 1.0)],
                max: 1.0,
            },
        );
        let s = QosSpec::builder("s")
            .dimension(Dimension::new(
                "d",
                vec![Attribute::new("codec", Domain::discrete_str(["h264"]))],
            ))
            .dependency(dep)
            .build();
        assert_eq!(s.unwrap_err(), SpecError::DanglingDependency);
    }

    #[test]
    fn no_dependencies_always_satisfied() {
        let s = spec_with(None).unwrap();
        assert!(qv(&s, 30, 24).satisfies_dependencies(&s));
    }
}
