//! Attribute value domains (paper §3: `Domain = {continuous, discrete}`).
//!
//! A [`Domain`] is the full set of values an attribute may take, as declared
//! by the *application* in its QoS requirements representation. The order in
//! which a discrete domain lists its values is meaningful: it is the
//! *quality order* used by the Quality-Index mapping of the evaluation
//! metric (paper eq. 5, following Lee et al. [12]) — `pos(v)` is the index
//! of `v` in this declaration.

use serde::{Deserialize, Serialize};

use crate::error::SpecError;
use crate::value::{Value, ValueType, F64};

/// The declared set of admissible values for one attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Domain {
    /// A discrete, quality-ordered set of integers, e.g. colour depth
    /// `{1, 3, 8, 16, 24}`.
    DiscreteInt(Vec<i64>),
    /// A discrete, quality-ordered set of floats.
    DiscreteFloat(Vec<F64>),
    /// A discrete, quality-ordered set of symbols, e.g. codec names.
    DiscreteStr(Vec<String>),
    /// A continuous (dense) integer interval, e.g. frame rate `[1..=30]`.
    ContinuousInt {
        /// Smallest admissible value.
        min: i64,
        /// Largest admissible value (inclusive).
        max: i64,
    },
    /// A continuous real interval.
    ContinuousFloat {
        /// Smallest admissible value.
        min: f64,
        /// Largest admissible value (inclusive).
        max: f64,
    },
}

impl Domain {
    /// Convenience constructor: discrete float domain from raw floats.
    ///
    /// # Panics
    /// Panics if any value is NaN.
    pub fn discrete_float(vals: impl IntoIterator<Item = f64>) -> Self {
        Domain::DiscreteFloat(vals.into_iter().map(F64::of).collect())
    }

    /// Convenience constructor: discrete string domain.
    pub fn discrete_str<S: Into<String>>(vals: impl IntoIterator<Item = S>) -> Self {
        Domain::DiscreteStr(vals.into_iter().map(Into::into).collect())
    }

    /// The value type this domain ranges over (paper §3: `Type`).
    pub fn ty(&self) -> ValueType {
        match self {
            Domain::DiscreteInt(_) | Domain::ContinuousInt { .. } => ValueType::Integer,
            Domain::DiscreteFloat(_) | Domain::ContinuousFloat { .. } => ValueType::Float,
            Domain::DiscreteStr(_) => ValueType::String,
        }
    }

    /// Whether the domain is discrete (paper §3: `Domain`).
    pub fn is_discrete(&self) -> bool {
        matches!(
            self,
            Domain::DiscreteInt(_) | Domain::DiscreteFloat(_) | Domain::DiscreteStr(_)
        )
    }

    /// Number of values in a discrete domain (`length(Qk)` in eq. 5);
    /// `None` for continuous domains.
    pub fn len(&self) -> Option<usize> {
        match self {
            Domain::DiscreteInt(v) => Some(v.len()),
            Domain::DiscreteFloat(v) => Some(v.len()),
            Domain::DiscreteStr(v) => Some(v.len()),
            _ => None,
        }
    }

    /// True when a discrete domain has no values (always false for
    /// continuous domains; those are validated to be non-empty intervals).
    pub fn is_empty(&self) -> bool {
        self.len() == Some(0)
    }

    /// Membership test.
    pub fn contains(&self, v: &Value) -> bool {
        match (self, v) {
            (Domain::DiscreteInt(d), Value::Int(i)) => d.contains(i),
            (Domain::DiscreteFloat(d), Value::Float(f)) => d.contains(f),
            (Domain::DiscreteStr(d), Value::Str(s)) => d.iter().any(|x| x == s),
            (Domain::ContinuousInt { min, max }, Value::Int(i)) => (min..=max).contains(&i),
            (Domain::ContinuousFloat { min, max }, Value::Float(f)) => {
                let x = f.get();
                *min <= x && x <= *max
            }
            _ => false,
        }
    }

    /// Quality-Index position of `v` in a discrete domain (paper eq. 5:
    /// `pos(·)`). `None` if the domain is continuous or `v` is absent.
    pub fn position(&self, v: &Value) -> Option<usize> {
        match (self, v) {
            (Domain::DiscreteInt(d), Value::Int(i)) => d.iter().position(|x| x == i),
            (Domain::DiscreteFloat(d), Value::Float(f)) => d.iter().position(|x| x == f),
            (Domain::DiscreteStr(d), Value::Str(s)) => d.iter().position(|x| x == s),
            _ => None,
        }
    }

    /// Width `max(Qk) − min(Qk)` of a continuous domain (the normaliser in
    /// the continuous branch of eq. 5). `None` for discrete domains.
    pub fn span(&self) -> Option<f64> {
        match self {
            Domain::ContinuousInt { min, max } => Some((max - min) as f64),
            Domain::ContinuousFloat { min, max } => Some(max - min),
            _ => None,
        }
    }

    /// The numeric bounds of a continuous domain.
    pub fn bounds(&self) -> Option<(f64, f64)> {
        match self {
            Domain::ContinuousInt { min, max } => Some((*min as f64, *max as f64)),
            Domain::ContinuousFloat { min, max } => Some((*min, *max)),
            _ => None,
        }
    }

    /// Structural validation: discrete domains must be non-empty and free
    /// of duplicates (pos(·) must be a bijection per the Quality-Index
    /// construction); continuous domains must have `min ≤ max` and finite
    /// bounds.
    pub fn validate(&self) -> Result<(), SpecError> {
        fn no_dups<T: PartialEq>(v: &[T]) -> bool {
            v.iter()
                .enumerate()
                .all(|(i, x)| !v[..i].iter().any(|y| y == x))
        }
        match self {
            Domain::DiscreteInt(v) => {
                if v.is_empty() {
                    return Err(SpecError::EmptyDomain);
                }
                if !no_dups(v) {
                    return Err(SpecError::DuplicateDomainValue);
                }
            }
            Domain::DiscreteFloat(v) => {
                if v.is_empty() {
                    return Err(SpecError::EmptyDomain);
                }
                if !no_dups(v) {
                    return Err(SpecError::DuplicateDomainValue);
                }
            }
            Domain::DiscreteStr(v) => {
                if v.is_empty() {
                    return Err(SpecError::EmptyDomain);
                }
                if !no_dups(v) {
                    return Err(SpecError::DuplicateDomainValue);
                }
            }
            Domain::ContinuousInt { min, max } => {
                if min > max {
                    return Err(SpecError::InvalidInterval);
                }
            }
            Domain::ContinuousFloat { min, max } => {
                if !(min.is_finite() && max.is_finite()) || min > max {
                    return Err(SpecError::InvalidInterval);
                }
            }
        }
        Ok(())
    }

    /// Enumerates a discrete domain's values in quality order, or samples a
    /// continuous one at `steps` evenly spaced points (used by generators
    /// and the exhaustive baseline; the negotiation protocol itself never
    /// needs to enumerate continuous domains).
    pub fn enumerate(&self, steps: usize) -> Vec<Value> {
        match self {
            Domain::DiscreteInt(v) => v.iter().copied().map(Value::Int).collect(),
            Domain::DiscreteFloat(v) => v.iter().copied().map(Value::Float).collect(),
            Domain::DiscreteStr(v) => v.iter().cloned().map(Value::Str).collect(),
            Domain::ContinuousInt { min, max } => {
                let n = ((max - min) as usize + 1).min(steps.max(1));
                if n <= 1 {
                    return vec![Value::Int(*min)];
                }
                (0..n)
                    .map(|i| {
                        let t = i as f64 / (n - 1) as f64;
                        Value::Int(min + ((*max - *min) as f64 * t).round() as i64)
                    })
                    .collect()
            }
            Domain::ContinuousFloat { min, max } => {
                let n = steps.max(1);
                if n == 1 {
                    return vec![Value::float(*min)];
                }
                (0..n)
                    .map(|i| {
                        let t = i as f64 / (n - 1) as f64;
                        Value::float(min + (max - min) * t)
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discrete_contains_and_position() {
        let d = Domain::DiscreteInt(vec![1, 3, 8, 16, 24]);
        assert!(d.contains(&Value::Int(8)));
        assert!(!d.contains(&Value::Int(2)));
        assert_eq!(d.position(&Value::Int(8)), Some(2));
        assert_eq!(d.position(&Value::Int(2)), None);
        assert_eq!(d.len(), Some(5));
        assert!(d.is_discrete());
        assert_eq!(d.ty(), ValueType::Integer);
    }

    #[test]
    fn type_mismatch_is_not_member() {
        let d = Domain::DiscreteInt(vec![1, 2]);
        assert!(!d.contains(&Value::float(1.0)));
        assert!(!d.contains(&Value::str("1")));
    }

    #[test]
    fn continuous_contains_and_span() {
        let d = Domain::ContinuousInt { min: 1, max: 30 };
        assert!(d.contains(&Value::Int(1)));
        assert!(d.contains(&Value::Int(30)));
        assert!(!d.contains(&Value::Int(0)));
        assert_eq!(d.span(), Some(29.0));
        assert_eq!(d.bounds(), Some((1.0, 30.0)));
        assert!(!d.is_discrete());
        assert_eq!(d.len(), None);
    }

    #[test]
    fn continuous_float_membership() {
        let d = Domain::ContinuousFloat { min: 0.0, max: 1.0 };
        assert!(d.contains(&Value::float(0.5)));
        assert!(!d.contains(&Value::float(1.5)));
        assert_eq!(d.span(), Some(1.0));
    }

    #[test]
    fn string_domain() {
        let d = Domain::discrete_str(["h264", "mpeg2", "mjpeg"]);
        assert_eq!(d.position(&Value::str("mpeg2")), Some(1));
        assert_eq!(d.ty(), ValueType::String);
    }

    #[test]
    fn validate_rejects_bad_domains() {
        assert!(Domain::DiscreteInt(vec![]).validate().is_err());
        assert!(Domain::DiscreteInt(vec![1, 1]).validate().is_err());
        assert!(Domain::ContinuousInt { min: 5, max: 1 }.validate().is_err());
        assert!(Domain::ContinuousFloat {
            min: 0.0,
            max: f64::INFINITY
        }
        .validate()
        .is_err());
        assert!(Domain::DiscreteInt(vec![1, 2]).validate().is_ok());
        assert!(Domain::ContinuousInt { min: 1, max: 1 }.validate().is_ok());
    }

    #[test]
    fn enumerate_discrete_preserves_quality_order() {
        let d = Domain::DiscreteInt(vec![24, 16, 8]);
        assert_eq!(
            d.enumerate(100),
            vec![Value::Int(24), Value::Int(16), Value::Int(8)]
        );
    }

    #[test]
    fn enumerate_continuous_int_covers_endpoints() {
        let d = Domain::ContinuousInt { min: 1, max: 30 };
        let vs = d.enumerate(4);
        assert_eq!(vs.first(), Some(&Value::Int(1)));
        assert_eq!(vs.last(), Some(&Value::Int(30)));
        assert_eq!(vs.len(), 4);
    }

    #[test]
    fn enumerate_continuous_small_interval_does_not_duplicate() {
        let d = Domain::ContinuousInt { min: 3, max: 3 };
        assert_eq!(d.enumerate(10), vec![Value::Int(3)]);
    }

    #[test]
    fn enumerate_continuous_float() {
        let d = Domain::ContinuousFloat { min: 0.0, max: 1.0 };
        let vs = d.enumerate(3);
        assert_eq!(
            vs,
            vec![Value::float(0.0), Value::float(0.5), Value::float(1.0)]
        );
    }
}
