//! A catalog of ready-made application specifications and requests.
//!
//! These mirror the paper's running examples (§3's audio/video spec, §3.1's
//! remote-surveillance request, §7's transcode-offload motivation) and are
//! used throughout the examples, tests and the experiment harness.

use crate::dependency::{Dependency, DependencyKind};
use crate::domain::Domain;
use crate::request::{LevelSpec, ServiceRequest};
use crate::spec::{AttrPath, Attribute, Dimension, QosSpec};

/// The paper's §3 example spec: Video Quality {color_depth, frame_rate} and
/// Audio Quality {sampling_rate, sample_bits}, with exactly the paper's
/// domains (`AV_color_depth = {1,3,8,16,24}`, `AV_frame_rate = [1..30]`,
/// `AV_sampling_rate = {8,16,24,44}`, `AV_sample_bits = {8,16,24}`).
pub fn av_spec() -> QosSpec {
    QosSpec::builder("audio-video")
        .dimension(Dimension::new(
            "Video Quality",
            vec![
                Attribute::new("frame_rate", Domain::ContinuousInt { min: 1, max: 30 }),
                Attribute::new("color_depth", Domain::DiscreteInt(vec![1, 3, 8, 16, 24])),
            ],
        ))
        .dimension(Dimension::new(
            "Audio Quality",
            vec![
                Attribute::new("sampling_rate", Domain::DiscreteInt(vec![8, 16, 24, 44])),
                Attribute::new("sample_bits", Domain::DiscreteInt(vec![8, 16, 24])),
            ],
        ))
        .build()
        .expect("catalog spec is statically valid")
}

/// §3.1's remote-surveillance request over [`av_spec`]: video ≻ audio,
/// frame_rate ≻ color_depth, grey-scale low frame rate acceptable.
pub fn surveillance_request() -> ServiceRequest {
    ServiceRequest::builder("surveillance")
        .dimension("Video Quality")
        .attribute(
            "frame_rate",
            vec![LevelSpec::int_range(10, 5), LevelSpec::int_range(4, 1)],
        )
        .attribute(
            "color_depth",
            vec![LevelSpec::value(3i64), LevelSpec::value(1i64)],
        )
        .dimension("Audio Quality")
        .attribute("sampling_rate", vec![LevelSpec::value(8i64)])
        .attribute("sample_bits", vec![LevelSpec::value(8i64)])
        .build()
}

/// A demanding video-conference request over [`av_spec`]: full preference
/// ladders on every attribute, video first.
pub fn video_conference_request() -> ServiceRequest {
    ServiceRequest::builder("video-conference")
        .dimension("Video Quality")
        .attribute("frame_rate", vec![LevelSpec::int_range(30, 10)])
        .attribute(
            "color_depth",
            vec![
                LevelSpec::value(24i64),
                LevelSpec::value(16i64),
                LevelSpec::value(8i64),
            ],
        )
        .dimension("Audio Quality")
        .attribute(
            "sampling_rate",
            vec![
                LevelSpec::value(44i64),
                LevelSpec::value(24i64),
                LevelSpec::value(16i64),
            ],
        )
        .attribute(
            "sample_bits",
            vec![LevelSpec::value(16i64), LevelSpec::value(8i64)],
        )
        .build()
}

/// An audio-first request (e.g. a voice call where video is a nicety).
pub fn voice_first_request() -> ServiceRequest {
    ServiceRequest::builder("voice-first")
        .dimension("Audio Quality")
        .attribute(
            "sampling_rate",
            vec![
                LevelSpec::value(44i64),
                LevelSpec::value(24i64),
                LevelSpec::value(16i64),
                LevelSpec::value(8i64),
            ],
        )
        .attribute(
            "sample_bits",
            vec![
                LevelSpec::value(24i64),
                LevelSpec::value(16i64),
                LevelSpec::value(8i64),
            ],
        )
        .dimension("Video Quality")
        .attribute("frame_rate", vec![LevelSpec::int_range(15, 1)])
        .attribute(
            "color_depth",
            vec![LevelSpec::value(8i64), LevelSpec::value(3i64)],
        )
        .build()
}

/// A media-transcoding spec for the §7 offload example: one Throughput
/// dimension (chunk rate, compression ratio) and one Fidelity dimension
/// (codec, bitrate), with a linear budget coupling chunk rate and bitrate.
pub fn transcode_spec() -> QosSpec {
    QosSpec::builder("transcode")
        .dimension(Dimension::new(
            "Throughput",
            vec![
                Attribute::new("chunk_rate", Domain::ContinuousInt { min: 1, max: 60 }),
                Attribute::new(
                    "compression_ratio",
                    Domain::discrete_float([0.9, 0.7, 0.5, 0.3]),
                ),
            ],
        ))
        .dimension(Dimension::new(
            "Fidelity",
            vec![
                Attribute::new("codec", Domain::discrete_str(["h264", "mpeg4", "mjpeg"])),
                Attribute::new(
                    "bitrate_kbps",
                    Domain::DiscreteInt(vec![2000, 1000, 500, 250]),
                ),
            ],
        ))
        .dependency(Dependency::new(
            "pipeline budget",
            DependencyKind::LinearBudget {
                // chunk_rate + bitrate/100 <= 80: a node cannot promise both
                // maximal rate and maximal fidelity.
                terms: vec![(AttrPath::new(0, 0), 1.0), (AttrPath::new(1, 1), 0.01)],
                max: 80.0,
            },
        ))
        .build()
        .expect("catalog spec is statically valid")
}

/// A balanced request over [`transcode_spec`].
pub fn transcode_request() -> ServiceRequest {
    ServiceRequest::builder("transcode")
        .dimension("Throughput")
        .attribute("chunk_rate", vec![LevelSpec::int_range(30, 5)])
        .attribute(
            "compression_ratio",
            vec![
                LevelSpec::value(0.5f64),
                LevelSpec::value(0.7f64),
                LevelSpec::value(0.9f64),
            ],
        )
        .dimension("Fidelity")
        .attribute(
            "codec",
            vec![LevelSpec::value("h264"), LevelSpec::value("mpeg4")],
        )
        .attribute(
            "bitrate_kbps",
            vec![
                LevelSpec::value(1000i64),
                LevelSpec::value(500i64),
                LevelSpec::value(250i64),
            ],
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_catalog_requests_resolve_against_their_specs() {
        let av = av_spec();
        assert!(surveillance_request().resolve(&av).is_ok());
        assert!(video_conference_request().resolve(&av).is_ok());
        assert!(voice_first_request().resolve(&av).is_ok());
        let tc = transcode_spec();
        assert!(transcode_request().resolve(&tc).is_ok());
    }

    #[test]
    fn av_spec_matches_paper_domains() {
        let s = av_spec();
        let cd = s
            .attribute_at(s.path("Video Quality", "color_depth").unwrap())
            .unwrap();
        assert_eq!(cd.domain, Domain::DiscreteInt(vec![1, 3, 8, 16, 24]));
        let fr = s
            .attribute_at(s.path("Video Quality", "frame_rate").unwrap())
            .unwrap();
        assert_eq!(fr.domain, Domain::ContinuousInt { min: 1, max: 30 });
        let sr = s
            .attribute_at(s.path("Audio Quality", "sampling_rate").unwrap())
            .unwrap();
        assert_eq!(sr.domain, Domain::DiscreteInt(vec![8, 16, 24, 44]));
        let sb = s
            .attribute_at(s.path("Audio Quality", "sample_bits").unwrap())
            .unwrap();
        assert_eq!(sb.domain, Domain::DiscreteInt(vec![8, 16, 24]));
    }

    #[test]
    fn transcode_dependency_is_enforced() {
        let s = transcode_spec();
        let r = transcode_request().resolve(&s).unwrap();
        // Preferred everywhere: chunk_rate 30 + bitrate 1000*0.01 = 40 <= 80.
        let qv = r.quality_vector(&s, &[0, 0, 0, 0]).unwrap();
        assert!(qv.satisfies_dependencies(&s));
    }
}
