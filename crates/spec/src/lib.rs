//! # qosc-spec — QoS requirements representation & service requests
//!
//! This crate implements §3 of *Dynamic QoS-Aware Coalition Formation*
//! (Nogueira & Pinho, 2005): the scheme
//! `QoS = {Dim, Attr, Val, DAr, AVr, Deps}` describing an application's
//! quality space, and the preference-ordered service request of §3.1 through
//! which a user expresses acceptable quality combinations *qualitatively*
//! (by relative importance) instead of via numeric utilities.
//!
//! ## Map from paper to types
//!
//! | Paper object | Type |
//! |---|---|
//! | `Dim` | [`Dimension`] |
//! | `Attr`, `DAr` | [`Attribute`] owned by its [`Dimension`] |
//! | `Val` (`Type` × `Domain`) | [`Value`], [`Domain`] |
//! | `AVr` | [`Attribute::domain`] |
//! | `Deps` | [`Dependency`] |
//! | user request (§3.1) | [`ServiceRequest`] → [`ResolvedRequest`] |
//! | service & independent tasks (§4.1) | [`ServiceDef`], [`TaskDef`] |
//!
//! The crate is deliberately free of protocol or resource concerns: it is
//! pure data + validation, shared by every other crate in the workspace.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
mod dependency;
mod domain;
mod error;
mod request;
mod spec;
mod task;
mod value;

pub use dependency::{Dependency, DependencyKind};
pub use domain::Domain;
pub use error::SpecError;
pub use request::{
    AttrPref, DimPref, LevelSpec, ResolvedAttrPref, ResolvedDimPref, ResolvedRequest,
    ServiceRequest, ServiceRequestBuilder,
};
pub use spec::{AttrPath, Attribute, Dimension, QosSpec, QosSpecBuilder, QualityVector};
pub use task::{ServiceDef, TaskDef, TaskId};
pub use value::{Value, ValueType, F64};
