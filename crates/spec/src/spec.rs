//! The QoS requirements representation (paper §3).
//!
//! `QoS = {Dim, Attr, Val, DAr, AVr, Deps}`:
//! * [`Dimension`] — an element of `Dim`, owning its attributes (`DAr`).
//! * [`Attribute`] — an element of `Attr`, owning its value domain (`AVr`).
//! * [`crate::Domain`] / [`crate::Value`] — `Val`.
//! * [`crate::Dependency`] — `Deps`.
//!
//! [`QosSpec`] ties the sets together and provides validated lookup by
//! name or by [`AttrPath`].

use serde::{Deserialize, Serialize};

use crate::dependency::Dependency;
use crate::domain::Domain;
use crate::error::SpecError;
use crate::value::Value;

/// Stable coordinates of one attribute inside a [`QosSpec`]:
/// `(dimension index, attribute index within the dimension)`.
///
/// Paths are only meaningful relative to the spec that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrPath {
    /// Index of the dimension in declaration order.
    pub dim: u16,
    /// Index of the attribute within its dimension, in declaration order.
    pub attr: u16,
}

impl AttrPath {
    /// Builds a path from raw indexes.
    pub fn new(dim: usize, attr: usize) -> Self {
        Self {
            dim: dim as u16,
            attr: attr as u16,
        }
    }

    /// Dimension index as `usize`.
    pub fn dim(&self) -> usize {
        self.dim as usize
    }

    /// Attribute index as `usize`.
    pub fn attr(&self) -> usize {
        self.attr as usize
    }
}

/// One QoS attribute: a name plus its declared value domain (`AVr`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute identifier, unique within its dimension.
    pub name: String,
    /// Declared admissible values, in quality order for discrete domains.
    pub domain: Domain,
}

impl Attribute {
    /// Creates an attribute.
    pub fn new(name: impl Into<String>, domain: Domain) -> Self {
        Self {
            name: name.into(),
            domain,
        }
    }
}

/// One QoS dimension and the attributes assigned to it (`DAr`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dimension {
    /// Dimension identifier, unique within the spec.
    pub name: String,
    /// Attributes of this dimension, in declaration order.
    pub attributes: Vec<Attribute>,
}

impl Dimension {
    /// Creates a dimension from its attributes.
    pub fn new(name: impl Into<String>, attributes: Vec<Attribute>) -> Self {
        Self {
            name: name.into(),
            attributes,
        }
    }

    /// Looks an attribute up by name.
    pub fn attribute(&self, name: &str) -> Option<(usize, &Attribute)> {
        self.attributes
            .iter()
            .enumerate()
            .find(|(_, a)| a.name == name)
    }
}

/// A complete, validated QoS requirements representation for one
/// application class (paper §3).
///
/// ```
/// use qosc_spec::{QosSpec, Dimension, Attribute, Domain};
/// let spec = QosSpec::builder("video app")
///     .dimension(Dimension::new("Video Quality", vec![
///         Attribute::new("frame_rate", Domain::ContinuousInt { min: 1, max: 30 }),
///         Attribute::new("color_depth", Domain::DiscreteInt(vec![1, 3, 8, 16, 24])),
///     ]))
///     .build()
///     .unwrap();
/// assert_eq!(spec.attr_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QosSpec {
    name: String,
    dimensions: Vec<Dimension>,
    dependencies: Vec<Dependency>,
}

impl QosSpec {
    /// Starts building a spec.
    pub fn builder(name: impl Into<String>) -> QosSpecBuilder {
        QosSpecBuilder {
            name: name.into(),
            dimensions: Vec::new(),
            dependencies: Vec::new(),
        }
    }

    /// Application-class name of this spec.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dimensions in declaration order.
    pub fn dimensions(&self) -> &[Dimension] {
        &self.dimensions
    }

    /// Declared inter-attribute dependencies (`Deps`).
    pub fn dependencies(&self) -> &[Dependency] {
        &self.dependencies
    }

    /// Number of dimensions.
    pub fn dim_count(&self) -> usize {
        self.dimensions.len()
    }

    /// Total number of attributes across all dimensions.
    pub fn attr_count(&self) -> usize {
        self.dimensions.iter().map(|d| d.attributes.len()).sum()
    }

    /// Looks a dimension up by name.
    pub fn dimension(&self, name: &str) -> Option<(usize, &Dimension)> {
        self.dimensions
            .iter()
            .enumerate()
            .find(|(_, d)| d.name == name)
    }

    /// Resolves an `(dimension, attribute)` name pair to a path.
    pub fn path(&self, dimension: &str, attribute: &str) -> Option<AttrPath> {
        let (di, d) = self.dimension(dimension)?;
        let (ai, _) = d.attribute(attribute)?;
        Some(AttrPath::new(di, ai))
    }

    /// The attribute at `path`, if in bounds.
    pub fn attribute_at(&self, path: AttrPath) -> Option<&Attribute> {
        self.dimensions
            .get(path.dim())
            .and_then(|d| d.attributes.get(path.attr()))
    }

    /// Iterates all attribute paths in dimension-major declaration order —
    /// the canonical flattening used by quality vectors.
    pub fn paths(&self) -> impl Iterator<Item = AttrPath> + '_ {
        self.dimensions
            .iter()
            .enumerate()
            .flat_map(|(di, d)| (0..d.attributes.len()).map(move |ai| AttrPath::new(di, ai)))
    }

    /// Flat index of `path` in [`QosSpec::paths`] order.
    pub fn flat_index(&self, path: AttrPath) -> Option<usize> {
        self.attribute_at(path)?;
        let before: usize = self.dimensions[..path.dim()]
            .iter()
            .map(|d| d.attributes.len())
            .sum();
        Some(before + path.attr())
    }
}

/// Builder for [`QosSpec`]; validation happens in [`QosSpecBuilder::build`].
#[derive(Debug, Clone)]
pub struct QosSpecBuilder {
    name: String,
    dimensions: Vec<Dimension>,
    dependencies: Vec<Dependency>,
}

impl QosSpecBuilder {
    /// Adds a dimension (declaration order is preserved).
    pub fn dimension(mut self, d: Dimension) -> Self {
        self.dimensions.push(d);
        self
    }

    /// Adds an inter-attribute dependency.
    pub fn dependency(mut self, dep: Dependency) -> Self {
        self.dependencies.push(dep);
        self
    }

    /// Validates and finishes the spec.
    ///
    /// Rules enforced: at least one dimension; at least one attribute per
    /// dimension; unique dimension names; unique attribute names within a
    /// dimension; every domain structurally valid; every dependency
    /// references in-bounds attribute paths.
    pub fn build(self) -> Result<QosSpec, SpecError> {
        if self.dimensions.is_empty() {
            return Err(SpecError::EmptySpec);
        }
        for (i, d) in self.dimensions.iter().enumerate() {
            if d.attributes.is_empty() {
                return Err(SpecError::EmptySpec);
            }
            if self.dimensions[..i].iter().any(|x| x.name == d.name) {
                return Err(SpecError::DuplicateName(d.name.clone()));
            }
            for (j, a) in d.attributes.iter().enumerate() {
                if d.attributes[..j].iter().any(|x| x.name == a.name) {
                    return Err(SpecError::DuplicateName(a.name.clone()));
                }
                a.domain.validate()?;
            }
        }
        let spec = QosSpec {
            name: self.name,
            dimensions: self.dimensions,
            dependencies: Vec::new(),
        };
        for dep in &self.dependencies {
            dep.validate(&spec)?;
        }
        Ok(QosSpec {
            dependencies: self.dependencies,
            ..spec
        })
    }
}

/// A complete assignment of one value to every attribute of a spec, in
/// [`QosSpec::paths`] (dimension-major) order.
///
/// This is the object proposals carry: "this node offers to run the task at
/// exactly these quality choices".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityVector {
    values: Vec<Value>,
}

impl QualityVector {
    /// Builds a vector from values in flattening order.
    ///
    /// Returns `None` when the length does not match `spec.attr_count()`
    /// or any value falls outside its attribute's domain.
    pub fn new(spec: &QosSpec, values: Vec<Value>) -> Option<Self> {
        if values.len() != spec.attr_count() {
            return None;
        }
        for (path, v) in spec.paths().zip(values.iter()) {
            if !spec.attribute_at(path)?.domain.contains(v) {
                return None;
            }
        }
        Some(Self { values })
    }

    /// Builds a vector without membership checks. Intended for hot paths
    /// that already guarantee validity (e.g. degradation over request
    /// levels, which are validated at resolution time).
    pub fn from_values_unchecked(values: Vec<Value>) -> Self {
        Self { values }
    }

    /// Value at `path`, given the spec that defines the flattening.
    pub fn get(&self, spec: &QosSpec, path: AttrPath) -> Option<&Value> {
        self.values.get(spec.flat_index(path)?)
    }

    /// Value at a flat index.
    pub fn get_flat(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Replaces the value at `path`. Returns false if out of bounds or the
    /// new value is outside the attribute's domain.
    pub fn set(&mut self, spec: &QosSpec, path: AttrPath, v: Value) -> bool {
        let Some(idx) = spec.flat_index(path) else {
            return false;
        };
        let Some(attr) = spec.attribute_at(path) else {
            return false;
        };
        if !attr.domain.contains(&v) {
            return false;
        }
        self.values[idx] = v;
        true
    }

    /// Replaces the value at a flat index without membership checks.
    /// Intended for hot paths that substitute values drawn from a resolved
    /// request's ladder (valid by construction), e.g. the degradation
    /// engine mutating one attribute per step instead of rebuilding the
    /// whole vector. Returns `false` when `idx` is out of range.
    pub fn set_flat_unchecked(&mut self, idx: usize, v: Value) -> bool {
        match self.values.get_mut(idx) {
            Some(slot) => {
                *slot = v;
                true
            }
            None => false,
        }
    }

    /// All values in flattening order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Checks every declared dependency of `spec` against this assignment.
    pub fn satisfies_dependencies(&self, spec: &QosSpec) -> bool {
        spec.dependencies().iter().all(|d| d.holds(spec, self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn video_spec() -> QosSpec {
        QosSpec::builder("video")
            .dimension(Dimension::new(
                "Video Quality",
                vec![
                    Attribute::new("frame_rate", Domain::ContinuousInt { min: 1, max: 30 }),
                    Attribute::new("color_depth", Domain::DiscreteInt(vec![1, 3, 8, 16, 24])),
                ],
            ))
            .dimension(Dimension::new(
                "Audio Quality",
                vec![
                    Attribute::new("sampling_rate", Domain::DiscreteInt(vec![8, 16, 24, 44])),
                    Attribute::new("sample_bits", Domain::DiscreteInt(vec![8, 16, 24])),
                ],
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn build_paper_example_spec() {
        let s = video_spec();
        assert_eq!(s.dim_count(), 2);
        assert_eq!(s.attr_count(), 4);
        assert_eq!(s.name(), "video");
    }

    #[test]
    fn lookup_by_name_and_path() {
        let s = video_spec();
        let p = s.path("Audio Quality", "sample_bits").unwrap();
        assert_eq!(p, AttrPath::new(1, 1));
        assert_eq!(s.attribute_at(p).unwrap().name, "sample_bits");
        assert!(s.path("Audio Quality", "nope").is_none());
        assert!(s.path("nope", "sample_bits").is_none());
    }

    #[test]
    fn flat_index_is_dimension_major() {
        let s = video_spec();
        let order: Vec<_> = s.paths().collect();
        assert_eq!(
            order,
            vec![
                AttrPath::new(0, 0),
                AttrPath::new(0, 1),
                AttrPath::new(1, 0),
                AttrPath::new(1, 1)
            ]
        );
        assert_eq!(s.flat_index(AttrPath::new(1, 0)), Some(2));
        assert_eq!(s.flat_index(AttrPath::new(2, 0)), None);
    }

    #[test]
    fn builder_rejects_duplicates_and_empties() {
        let err = QosSpec::builder("x").build().unwrap_err();
        assert_eq!(err, SpecError::EmptySpec);

        let err = QosSpec::builder("x")
            .dimension(Dimension::new("d", vec![]))
            .build()
            .unwrap_err();
        assert_eq!(err, SpecError::EmptySpec);

        let err = QosSpec::builder("x")
            .dimension(Dimension::new(
                "d",
                vec![Attribute::new("a", Domain::DiscreteInt(vec![1]))],
            ))
            .dimension(Dimension::new(
                "d",
                vec![Attribute::new("a", Domain::DiscreteInt(vec![1]))],
            ))
            .build()
            .unwrap_err();
        assert_eq!(err, SpecError::DuplicateName("d".into()));

        let err = QosSpec::builder("x")
            .dimension(Dimension::new(
                "d",
                vec![
                    Attribute::new("a", Domain::DiscreteInt(vec![1])),
                    Attribute::new("a", Domain::DiscreteInt(vec![2])),
                ],
            ))
            .build()
            .unwrap_err();
        assert_eq!(err, SpecError::DuplicateName("a".into()));
    }

    #[test]
    fn builder_propagates_domain_validation() {
        let err = QosSpec::builder("x")
            .dimension(Dimension::new(
                "d",
                vec![Attribute::new("a", Domain::DiscreteInt(vec![]))],
            ))
            .build()
            .unwrap_err();
        assert_eq!(err, SpecError::EmptyDomain);
    }

    #[test]
    fn quality_vector_roundtrip() {
        let s = video_spec();
        let qv = QualityVector::new(
            &s,
            vec![
                Value::Int(25),
                Value::Int(24),
                Value::Int(44),
                Value::Int(16),
            ],
        )
        .unwrap();
        let p = s.path("Video Quality", "color_depth").unwrap();
        assert_eq!(qv.get(&s, p), Some(&Value::Int(24)));
    }

    #[test]
    fn quality_vector_rejects_bad_shapes() {
        let s = video_spec();
        assert!(QualityVector::new(&s, vec![Value::Int(25)]).is_none());
        // 2 is not an admissible colour depth
        assert!(QualityVector::new(
            &s,
            vec![
                Value::Int(25),
                Value::Int(2),
                Value::Int(44),
                Value::Int(16)
            ]
        )
        .is_none());
    }

    #[test]
    fn quality_vector_set_respects_domain() {
        let s = video_spec();
        let mut qv = QualityVector::new(
            &s,
            vec![
                Value::Int(25),
                Value::Int(24),
                Value::Int(44),
                Value::Int(16),
            ],
        )
        .unwrap();
        let p = s.path("Video Quality", "frame_rate").unwrap();
        assert!(qv.set(&s, p, Value::Int(10)));
        assert!(!qv.set(&s, p, Value::Int(31)));
        assert_eq!(qv.get(&s, p), Some(&Value::Int(10)));
    }
}
