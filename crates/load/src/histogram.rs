//! Log-bucketed latency histogram.
//!
//! Open-loop runs record one latency per formed negotiation — potentially
//! millions per sweep — so percentiles must come from a constant-memory
//! sketch, not a sorted vector. [`LatencyHistogram`] uses HDR-style
//! log-linear buckets: 8 sub-buckets per power of two, so every bucket's
//! width is at most 12.5 % of its lower bound, and any reported quantile
//! is guaranteed to land in the same bucket as the exact order statistic.
//! Histograms merge by bucket-wise addition (associative and
//! commutative), which is what lets sharded or repeated runs combine.

use qosc_netsim::SimDuration;

/// Sub-bucket resolution: 2^3 = 8 linear sub-buckets per octave.
const SUB_BITS: u32 = 3;
const SUBS: u64 = 1 << SUB_BITS;
/// Bucket count: values below 8 are exact (indices 0–7); each of the 61
/// octaves from 2^3 up contributes 8 sub-buckets (top index 495).
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUBS as usize;

/// Index of the bucket containing `v` (µs).
fn bucket_index(v: u64) -> usize {
    if v < SUBS {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = (v >> (octave - SUB_BITS)) & (SUBS - 1);
    (((octave - SUB_BITS + 1) as u64 * SUBS) + sub) as usize
}

/// Lower bound (µs) of bucket `index` — the representative a quantile
/// query reports.
fn bucket_lower(index: usize) -> u64 {
    let i = index as u64;
    if i < SUBS {
        return i;
    }
    let octave = (i >> SUB_BITS) as u32 + SUB_BITS - 1;
    let sub = i & (SUBS - 1);
    (1u64 << octave) + (sub << (octave - SUB_BITS))
}

/// Constant-memory latency sketch with ≤12.5 % relative bucket width.
///
/// Records microsecond durations; `quantile` returns the lower bound of
/// the bucket holding the exact order statistic (clamped into the
/// recorded `[min, max]`), so a reported pXX is always within one bucket
/// — under 12.5 % relative error — of the true value.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    min_us: u64,
    max_us: u64,
    sum_us: u128,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("min_us", &self.min())
            .field("max_us", &self.max())
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

impl LatencyHistogram {
    /// An empty histogram (512 buckets, ~4 KiB).
    pub fn new() -> Self {
        Self {
            counts: Box::new([0u64; BUCKETS]),
            count: 0,
            min_us: u64::MAX,
            max_us: 0,
            sum_us: 0,
        }
    }

    /// Records one latency.
    pub fn record(&mut self, d: SimDuration) {
        self.record_us(d.as_micros());
    }

    /// Records one latency in raw microseconds.
    pub fn record_us(&mut self, us: u64) {
        self.counts[bucket_index(us)] += 1;
        self.count += 1;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
        self.sum_us += u128::from(us);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min_us)
    }

    /// Largest recorded value, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max_us)
    }

    /// Exact mean of the recorded values, if any (the sum is tracked
    /// exactly; only quantiles are sketched).
    pub fn mean_us(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_us as f64 / self.count as f64)
    }

    /// Bucket-wise merge: `self` absorbs `other`. Associative and
    /// commutative (u64 addition per bucket, min/max/sum combine).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
        self.sum_us += other.sum_us;
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`), or `None` when empty.
    ///
    /// Returns the lower bound of the bucket holding the exact order
    /// statistic of rank `ceil(q·count)` (clamped into `[min, max]`),
    /// so the report and the exact value always share a bucket.
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= rank {
                // Clamping into [min, max] tightens the tails and cannot
                // leave the bucket: min ≤ exact and lower ≤ exact, so
                // max(lower, min) ≤ exact; symmetrically for max.
                let us = bucket_lower(i).clamp(self.min_us, self.max_us);
                return Some(SimDuration::micros(us));
            }
        }
        Some(SimDuration::micros(self.max_us))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn bucket_layout_is_continuous_and_monotone() {
        // Every value maps to a bucket whose [lower, next lower) range
        // contains it, and indices are non-decreasing in the value.
        let mut prev_idx = 0usize;
        for v in (0u64..4096).chain([1 << 20, 1 << 40, u64::MAX - 1, u64::MAX]) {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "v {v} → idx {idx}");
            assert!(bucket_lower(idx) <= v, "lower bound exceeds v {v}");
            if idx + 1 < BUCKETS {
                assert!(bucket_lower(idx + 1) > v, "v {v} beyond bucket {idx}");
            }
            assert!(idx >= prev_idx || v == 0, "index regressed at {v}");
            prev_idx = idx;
        }
        // Relative width ≤ 12.5 % from the second octave on.
        for idx in (SUBS as usize * 2)..BUCKETS - 1 {
            let lo = bucket_lower(idx) as f64;
            let hi = bucket_lower(idx + 1) as f64;
            assert!((hi - lo) / lo <= 0.125 + 1e-12, "bucket {idx} too wide");
        }
    }

    #[test]
    fn zero_count_behaviour() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean_us(), None);
        // Merging empties stays empty.
        let mut a = LatencyHistogram::new();
        a.merge(&h);
        assert!(a.is_empty());
    }

    #[test]
    fn quantiles_bracket_the_exact_order_statistic() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..20 {
            let n = rng.gen_range(1usize..=2000);
            let mut values: Vec<u64> = (0..n)
                .map(|_| {
                    // Mix scales so many octaves are exercised.
                    let exp = rng.gen_range(0u32..30);
                    rng.gen_range(0u64..(1u64 << exp).max(2))
                })
                .collect();
            let mut h = LatencyHistogram::new();
            for &v in &values {
                h.record_us(v);
            }
            values.sort_unstable();
            for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
                let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
                let exact = values[rank - 1];
                let got = h.quantile(q).expect("non-empty").as_micros();
                assert_eq!(
                    bucket_index(got),
                    bucket_index(exact),
                    "q {q}: got {got}, exact {exact} (n {n})"
                );
            }
        }
    }

    #[test]
    fn merge_is_associative_and_matches_bulk_recording() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let chunks: Vec<Vec<u64>> = (0..3)
            .map(|_| (0..500).map(|_| rng.gen_range(0u64..1_000_000)).collect())
            .collect();
        let of = |vals: &[u64]| {
            let mut h = LatencyHistogram::new();
            for &v in vals {
                h.record_us(v);
            }
            h
        };
        // (a ∪ b) ∪ c vs a ∪ (b ∪ c) vs one bulk histogram.
        let mut left = of(&chunks[0]);
        left.merge(&of(&chunks[1]));
        left.merge(&of(&chunks[2]));
        let mut bc = of(&chunks[1]);
        bc.merge(&of(&chunks[2]));
        let mut right = of(&chunks[0]);
        right.merge(&bc);
        let all: Vec<u64> = chunks.concat();
        let bulk = of(&all);
        for h in [&left, &right] {
            assert_eq!(h.count(), bulk.count());
            assert_eq!(h.min(), bulk.min());
            assert_eq!(h.max(), bulk.max());
            assert_eq!(h.mean_us(), bulk.mean_us());
            assert_eq!(&h.counts[..], &bulk.counts[..]);
            for q in [0.25, 0.5, 0.75, 0.99] {
                assert_eq!(h.quantile(q), bulk.quantile(q));
            }
        }
    }

    #[test]
    fn single_value_reports_itself_everywhere() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::millis(250));
        for q in [0.0, 0.5, 1.0] {
            let v = h.quantile(q).unwrap().as_micros();
            assert_eq!(bucket_index(v), bucket_index(250_000));
            assert!(v >= h.min().unwrap() && v <= h.max().unwrap());
        }
        assert_eq!(h.mean_us(), Some(250_000.0));
    }
}
