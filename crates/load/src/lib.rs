//! # qosc-load — open-loop workload engine
//!
//! Drives the coalition-formation engines with *offered* load rather
//! than closed-loop request/response cycles, which is what the paper's
//! §5 evaluation needs to locate saturation: a generator that slows
//! down when the system falls behind measures the generator.
//!
//! * [`ArrivalProcess`] — arrival-instant sampling: homogeneous Poisson
//!   ([`PoissonArrivals`]), piecewise-constant rate curves
//!   ([`PiecewiseRate`], with a diurnal raised-cosine preset), and
//!   Lewis–Shedler thinning for arbitrary rate functions
//!   ([`ThinnedProcess`]).
//! * [`LoadPlan`] / [`LoadDriver`] — pre-samples every arrival, submits
//!   them all up front against an organizer pool, and harvests outcomes
//!   and formation latencies from the runtime's event log.
//! * [`LatencyHistogram`] — constant-memory log-bucketed percentile
//!   sketch (p50/p90/p99 within one ≤12.5 %-wide bucket of exact),
//!   mergeable across shards and replicates.
//! * [`SaturationReport`] — offered-rate sweep with
//!   [`knee`](SaturationReport::knee) detection.
//!
//! ```
//! use qosc_load::{ArrivalProcess, LatencyHistogram, PoissonArrivals};
//! use qosc_netsim::{SimDuration, SimTime};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(7);
//! let arrivals = PoissonArrivals::new(20.0).sample_until(
//!     SimTime::ZERO,
//!     SimTime::ZERO + SimDuration::secs(10),
//!     &mut rng,
//! );
//! let mut lat = LatencyHistogram::new();
//! for (i, _) in arrivals.iter().enumerate() {
//!     lat.record(SimDuration::millis(40 + (i as u64 % 25)));
//! }
//! let p99 = lat.quantile(0.99).expect("non-empty");
//! assert!(p99 >= lat.quantile(0.50).expect("non-empty"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod arrivals;
mod driver;
mod histogram;
mod report;

pub use arrivals::{
    diurnal_thinned, ArrivalProcess, PiecewiseRate, PoissonArrivals, ThinnedProcess,
};
pub use driver::{LoadDriver, LoadPlan, LoadReport};
pub use histogram::LatencyHistogram;
pub use report::{SaturationPoint, SaturationReport};
