//! Open-loop load driving.
//!
//! A [`LoadPlan`] fixes everything about an offered load before the run
//! starts: the arrival instants (pre-sampled from an
//! [`ArrivalProcess`](crate::ArrivalProcess)), the organizer pool the
//! requests rotate through, and the application template. The
//! [`LoadDriver`] then submits *all* arrivals up front and lets the
//! runtime execute — arrivals fire at their sampled instants whether or
//! not earlier negotiations have finished, which is what makes the load
//! open-loop: a saturated system falls behind instead of silently
//! throttling the generator, so the measured sustained rate and latency
//! tail reflect the engine, not the harness.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qosc_core::{NegoEvent, Pid, Runtime};
use qosc_netsim::{SimDuration, SimTime};
use qosc_workloads::AppTemplate;

use crate::arrivals::ArrivalProcess;
use crate::histogram::LatencyHistogram;

/// A fully pre-sampled offered load: every arrival instant is fixed
/// before the runtime starts, so the generator cannot react to (or be
/// slowed by) the system under test.
#[derive(Debug, Clone)]
pub struct LoadPlan {
    /// Arrival instants, in any order (submission sorts logically via
    /// the runtime's event queue).
    pub arrivals: Vec<SimTime>,
    /// Organizer pool; arrival `i` is submitted at `organizers[i % len]`.
    pub organizers: Vec<Pid>,
    /// Application template each request instantiates.
    pub template: AppTemplate,
    /// Tasks per submitted service.
    pub tasks_per_service: usize,
    /// Seed for per-request payload sampling.
    pub seed: u64,
    /// The sampling window the arrivals were drawn over — offered and
    /// sustained rates are normalised by this, not by the drain.
    pub window: SimDuration,
    /// Extra time after the window closes for in-flight negotiations to
    /// settle before the run is cut off.
    pub drain: SimDuration,
}

impl LoadPlan {
    /// Samples a plan from an arrival process over `[0, window)`.
    pub fn sampled(
        process: &dyn ArrivalProcess,
        window: SimDuration,
        organizers: Vec<Pid>,
        template: AppTemplate,
        tasks_per_service: usize,
        seed: u64,
    ) -> LoadPlan {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xA881_0A11);
        let arrivals = process.sample_until(SimTime::ZERO, SimTime::ZERO + window, &mut rng);
        LoadPlan {
            arrivals,
            organizers,
            template,
            tasks_per_service,
            seed,
            window,
            drain: SimDuration::secs(5),
        }
    }

    /// Offered rate implied by the plan (arrivals per second of window).
    pub fn offered_per_s(&self) -> f64 {
        let secs = self.window.as_secs_f64();
        if secs > 0.0 {
            self.arrivals.len() as f64 / secs
        } else {
            0.0
        }
    }
}

/// Outcome of driving one [`LoadPlan`] against a runtime.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests submitted (one per arrival).
    pub submitted: usize,
    /// Negotiations that formed a full coalition.
    pub formed: usize,
    /// Negotiations that ended with unassigned tasks.
    pub incomplete: usize,
    /// The plan's sampling window (rate normaliser).
    pub window: SimDuration,
    /// Formation-latency sketch over formed negotiations.
    pub latency: LatencyHistogram,
    /// Messages the runtime sent during this run.
    pub messages: u64,
}

impl LoadReport {
    /// Negotiations that reached a terminal outcome before cut-off.
    pub fn settled(&self) -> usize {
        self.formed + self.incomplete
    }

    /// Fraction of submitted requests that formed (0 when none
    /// submitted). Requests still in flight at cut-off count against it
    /// — deliberately, since a saturated system's backlog is the signal.
    pub fn formed_ratio(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.formed as f64 / self.submitted as f64
        }
    }

    /// Formed coalitions per second of window.
    pub fn sustained_per_s(&self) -> f64 {
        let secs = self.window.as_secs_f64();
        if secs > 0.0 {
            self.formed as f64 / secs
        } else {
            0.0
        }
    }
}

/// Submits a plan's arrivals and harvests outcome counts and latencies.
#[derive(Debug, Clone)]
pub struct LoadDriver<'a> {
    plan: &'a LoadPlan,
}

impl<'a> LoadDriver<'a> {
    /// A driver for `plan`.
    pub fn new(plan: &'a LoadPlan) -> Self {
        LoadDriver { plan }
    }

    /// Drives the plan: submits every arrival up front (true open loop),
    /// runs the runtime to window + drain, and scans the event log
    /// emitted during this call.
    ///
    /// The runtime may carry state and events from earlier runs; only
    /// events logged by this call are counted.
    pub fn run(&self, rt: &mut dyn Runtime) -> LoadReport {
        let plan = self.plan;
        assert!(
            !plan.organizers.is_empty() || plan.arrivals.is_empty(),
            "load plan with arrivals needs at least one organizer"
        );
        let events_before = rt.events().len();
        let messages_before = rt.messages_sent();
        let mut rng = ChaCha8Rng::seed_from_u64(plan.seed ^ 0x10AD_10AD);
        let mut last = SimTime::ZERO;
        for (i, &at) in plan.arrivals.iter().enumerate() {
            let org = plan.organizers[i % plan.organizers.len()];
            let svc = plan
                .template
                .service(format!("load-{i}"), plan.tasks_per_service, &mut rng);
            rt.submit(org, svc, at)
                .expect("load plan organizers must be registered in the runtime");
            last = last.max(at);
        }
        let deadline = last.max(SimTime::ZERO + plan.window) + plan.drain;
        rt.run(deadline);

        let mut report = LoadReport {
            submitted: plan.arrivals.len(),
            formed: 0,
            incomplete: 0,
            window: plan.window,
            latency: LatencyHistogram::new(),
            messages: rt.messages_sent().saturating_sub(messages_before),
        };
        for logged in &rt.events()[events_before..] {
            match &logged.event {
                NegoEvent::Formed { metrics, .. } => {
                    report.formed += 1;
                    if let Some(lat) = metrics.formation_latency() {
                        report.latency.record(lat);
                    }
                }
                NegoEvent::FormationIncomplete { .. } => report.incomplete += 1,
                _ => {}
            }
        }
        report
    }
}
