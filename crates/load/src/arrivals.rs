//! Arrival processes: homogeneous Poisson, piecewise-constant rate
//! curves, and thinning-based inhomogeneous sampling.
//!
//! Service requests "may arrive dynamically" (§5). The original F2-style
//! sweeps modelled them as a homogeneous Poisson process; the open-loop
//! load engine also needs time-varying offered load (diurnal curves,
//! ramps), which the literature simulates either exactly per
//! constant-rate segment ([`PiecewiseRate`]) or by Lewis–Shedler thinning
//! of a dominating homogeneous envelope ([`ThinnedProcess`]) for
//! arbitrary rate functions.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use qosc_netsim::{SimDuration, SimTime};

/// A point process generating service-arrival instants.
///
/// Object-safe (takes the workspace's one concrete RNG) so drivers and
/// sweeps can store heterogeneous processes behind `&dyn`.
pub trait ArrivalProcess {
    /// Samples arrival instants in `[start, end)`, non-decreasing.
    fn sample_until(&self, start: SimTime, end: SimTime, rng: &mut ChaCha8Rng) -> Vec<SimTime>;

    /// Expected number of arrivals in `[start, end)` — the integral of
    /// the rate function over the window.
    fn expected_arrivals(&self, start: SimTime, end: SimTime) -> f64;
}

/// Exponential inter-arrival sampler (homogeneous Poisson process).
#[derive(Debug, Clone, Copy)]
pub struct PoissonArrivals {
    /// Mean arrivals per simulated second.
    pub rate_per_s: f64,
}

impl PoissonArrivals {
    /// Creates a process with the given rate (arrivals/second).
    pub fn new(rate_per_s: f64) -> Self {
        Self { rate_per_s }
    }

    /// Samples the next inter-arrival gap; `None` when the rate is zero
    /// (or negative): no arrival ever comes.
    ///
    /// The explicit `None` replaces the old "huge duration" sentinel
    /// (`SimDuration::secs(u64::MAX / 2_000_000)`), which relied on
    /// saturating `SimTime` addition to behave when added to a late
    /// instant — callers summing gaps themselves had no such safety net.
    pub fn next_gap(&self, rng: &mut impl Rng) -> Option<SimDuration> {
        if self.rate_per_s <= 0.0 {
            return None;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        Some(SimDuration::secs_f64(-u.ln() / self.rate_per_s))
    }

    /// Samples arrival instants from `start` until `end` (exclusive).
    pub fn sample_until(&self, start: SimTime, end: SimTime, rng: &mut impl Rng) -> Vec<SimTime> {
        let mut out = Vec::new();
        let mut t = start;
        while let Some(gap) = self.next_gap(rng) {
            t += gap;
            if t >= end {
                break;
            }
            out.push(t);
        }
        out
    }
}

impl ArrivalProcess for PoissonArrivals {
    fn sample_until(&self, start: SimTime, end: SimTime, rng: &mut ChaCha8Rng) -> Vec<SimTime> {
        PoissonArrivals::sample_until(self, start, end, rng)
    }

    fn expected_arrivals(&self, start: SimTime, end: SimTime) -> f64 {
        self.rate_per_s.max(0.0) * end.since(start).as_secs_f64()
    }
}

/// A periodic piecewise-constant rate curve: segments of `(length, rate)`
/// repeated forever. Sampling is *exact* (a homogeneous Poisson process
/// per constant-rate stretch — no envelope, no rejection), which makes
/// this the reference the thinning sampler is property-tested against.
#[derive(Debug, Clone)]
pub struct PiecewiseRate {
    segments: Vec<(SimDuration, f64)>,
    period: SimDuration,
}

impl PiecewiseRate {
    /// Builds a curve from `(segment length, arrivals/second)` pairs.
    ///
    /// # Panics
    /// If `segments` is empty or the total length is zero.
    pub fn new(segments: Vec<(SimDuration, f64)>) -> Self {
        assert!(
            !segments.is_empty(),
            "rate curve needs at least one segment"
        );
        let period = segments
            .iter()
            .fold(SimDuration::ZERO, |acc, (len, _)| acc + *len);
        assert!(period > SimDuration::ZERO, "rate curve period must be > 0");
        Self { segments, period }
    }

    /// A diurnal preset: 24 equal segments tracing a raised cosine from
    /// `trough_per_s` (start of the period) up to `peak_per_s`
    /// (mid-period) and back.
    pub fn diurnal(trough_per_s: f64, peak_per_s: f64, period: SimDuration) -> Self {
        const N: u64 = 24;
        let seg = SimDuration::micros((period.as_micros() / N).max(1));
        let segments = (0..N)
            .map(|i| {
                let phase = (i as f64 + 0.5) / N as f64;
                let x = 0.5 - 0.5 * (2.0 * std::f64::consts::PI * phase).cos();
                (seg, trough_per_s + (peak_per_s - trough_per_s) * x)
            })
            .collect();
        Self::new(segments)
    }

    /// One full cycle of the curve.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Instantaneous rate at `t` (the curve repeats with [`Self::period`]).
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let mut off = t.as_micros() % self.period.as_micros();
        for (len, rate) in &self.segments {
            if off < len.as_micros() {
                return *rate;
            }
            off -= len.as_micros();
        }
        // Unreachable: off < period = Σ lengths.
        self.segments[self.segments.len() - 1].1
    }

    /// The curve's maximum rate — a valid thinning envelope.
    pub fn max_rate(&self) -> f64 {
        self.segments.iter().fold(0.0, |m, &(_, r)| m.max(r))
    }

    /// Integral of the rate over `[SimTime::ZERO, t)`, in expected
    /// arrivals.
    fn integral_from_zero(&self, t: SimTime) -> f64 {
        let per_period: f64 = self
            .segments
            .iter()
            .map(|(len, r)| len.as_secs_f64() * r)
            .sum();
        let us = t.as_micros();
        let full = (us / self.period.as_micros()) as f64 * per_period;
        let mut off = us % self.period.as_micros();
        let mut partial = 0.0;
        for (len, r) in &self.segments {
            let take = off.min(len.as_micros());
            partial += take as f64 / 1e6 * r;
            off -= take;
            if off == 0 {
                break;
            }
        }
        full + partial
    }
}

impl ArrivalProcess for PiecewiseRate {
    /// Exact sampling: walk the constant-rate stretches covering
    /// `[start, end)` and sample exponential gaps at each stretch's rate.
    /// Restarting at each boundary is exact by memorylessness.
    fn sample_until(&self, start: SimTime, end: SimTime, rng: &mut ChaCha8Rng) -> Vec<SimTime> {
        let mut out = Vec::new();
        let mut t = start;
        while t < end {
            // Locate the stretch containing `t` and its absolute end.
            let mut off = t.as_micros() % self.period.as_micros();
            let mut rate = 0.0;
            let mut remaining = 0u64;
            for (len, r) in &self.segments {
                if off < len.as_micros() {
                    rate = *r;
                    remaining = len.as_micros() - off;
                    break;
                }
                off -= len.as_micros();
            }
            let stretch_end = (t + SimDuration::micros(remaining)).min(end);
            if rate <= 0.0 {
                t = stretch_end;
                continue;
            }
            let mut cur = t;
            loop {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                cur += SimDuration::secs_f64(-u.ln() / rate);
                if cur >= stretch_end {
                    break;
                }
                out.push(cur);
            }
            t = stretch_end;
        }
        out
    }

    fn expected_arrivals(&self, start: SimTime, end: SimTime) -> f64 {
        if end <= start {
            return 0.0;
        }
        self.integral_from_zero(end) - self.integral_from_zero(start)
    }
}

/// Lewis–Shedler thinning: sample a homogeneous envelope process at
/// `envelope_per_s` and accept each arrival `t` with probability
/// `rate(t) / envelope_per_s`. Exact for any rate function bounded by the
/// envelope; rates above the envelope are clipped (the caller must supply
/// a true upper bound, e.g. [`PiecewiseRate::max_rate`]).
pub struct ThinnedProcess<F: Fn(SimTime) -> f64> {
    rate: F,
    envelope_per_s: f64,
}

impl<F: Fn(SimTime) -> f64> ThinnedProcess<F> {
    /// Creates a thinning sampler for `rate` under the given envelope.
    pub fn new(envelope_per_s: f64, rate: F) -> Self {
        Self {
            rate,
            envelope_per_s,
        }
    }

    /// The instantaneous rate at `t` as the sampler sees it (clipped to
    /// the envelope).
    pub fn rate_at(&self, t: SimTime) -> f64 {
        (self.rate)(t).clamp(0.0, self.envelope_per_s)
    }

    /// Samples both the thinned arrivals and the envelope arrivals they
    /// were selected from (the accepted set is a subset of the envelope —
    /// the property the `arrival_props` tests pin).
    pub fn sample_with_envelope(
        &self,
        start: SimTime,
        end: SimTime,
        rng: &mut ChaCha8Rng,
    ) -> (Vec<SimTime>, Vec<SimTime>) {
        let envelope = PoissonArrivals::new(self.envelope_per_s).sample_until(start, end, rng);
        let mut accepted = Vec::new();
        for &t in &envelope {
            let p = if self.envelope_per_s > 0.0 {
                ((self.rate)(t) / self.envelope_per_s).clamp(0.0, 1.0)
            } else {
                0.0
            };
            if rng.gen_bool(p) {
                accepted.push(t);
            }
        }
        (accepted, envelope)
    }
}

impl<F: Fn(SimTime) -> f64> ArrivalProcess for ThinnedProcess<F> {
    fn sample_until(&self, start: SimTime, end: SimTime, rng: &mut ChaCha8Rng) -> Vec<SimTime> {
        self.sample_with_envelope(start, end, rng).0
    }

    /// Midpoint-rule numeric integral of the (clipped) rate — the rate is
    /// an opaque closure, so this is approximate by construction; 4096
    /// panels keep the error far below sampling noise for reporting.
    fn expected_arrivals(&self, start: SimTime, end: SimTime) -> f64 {
        if end <= start {
            return 0.0;
        }
        const PANELS: u64 = 4096;
        let span = end.since(start).as_micros();
        let mut sum = 0.0;
        for i in 0..PANELS {
            let mid = start + SimDuration::micros(span * (2 * i + 1) / (2 * PANELS));
            sum += self.rate_at(mid);
        }
        sum * (span as f64 / 1e6) / PANELS as f64
    }
}

/// A diurnal inhomogeneous process via thinning: a raised-cosine
/// [`PiecewiseRate::diurnal`] curve sampled under its own max-rate
/// envelope. The go-to preset for daily-traffic saturation studies.
pub fn diurnal_thinned(
    trough_per_s: f64,
    peak_per_s: f64,
    period: SimDuration,
) -> ThinnedProcess<impl Fn(SimTime) -> f64> {
    let curve = PiecewiseRate::diurnal(trough_per_s, peak_per_s, period);
    let envelope = curve.max_rate();
    ThinnedProcess::new(envelope, move |t| curve.rate_at(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mean_rate_is_approximately_honoured() {
        let p = PoissonArrivals::new(5.0);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let arrivals =
            PoissonArrivals::sample_until(&p, SimTime::ZERO, SimTime(100_000_000), &mut rng);
        // 5/s over 100 s → ~500 arrivals; accept ±20 %.
        assert!(
            (400..=600).contains(&arrivals.len()),
            "got {}",
            arrivals.len()
        );
        // Strictly increasing.
        for w in arrivals.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn zero_rate_never_arrives() {
        let p = PoissonArrivals::new(0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(p.next_gap(&mut rng).is_none());
        assert!(
            PoissonArrivals::sample_until(&p, SimTime::ZERO, SimTime(10_000_000), &mut rng)
                .is_empty()
        );
    }

    /// Regression for the old sentinel `SimDuration::secs(u64::MAX /
    /// 2_000_000)`: a zero-rate process sampled from an instant near the
    /// end of time must return no arrivals without overflowing — the
    /// `Option` gap makes "never" explicit instead of relying on
    /// saturating adds downstream.
    #[test]
    fn zero_rate_near_the_end_of_time_is_safe() {
        let p = PoissonArrivals::new(0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let late = SimTime(u64::MAX - 10);
        assert!(PoissonArrivals::sample_until(&p, late, SimTime(u64::MAX), &mut rng).is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        let p = PoissonArrivals::new(2.0);
        let a = PoissonArrivals::sample_until(
            &p,
            SimTime::ZERO,
            SimTime(10_000_000),
            &mut ChaCha8Rng::seed_from_u64(3),
        );
        let b = PoissonArrivals::sample_until(
            &p,
            SimTime::ZERO,
            SimTime(10_000_000),
            &mut ChaCha8Rng::seed_from_u64(3),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn piecewise_rate_lookup_and_integral() {
        let curve = PiecewiseRate::new(vec![
            (SimDuration::secs(10), 2.0),
            (SimDuration::secs(10), 8.0),
        ]);
        assert_eq!(curve.period(), SimDuration::secs(20));
        assert_eq!(curve.rate_at(SimTime(5_000_000)), 2.0);
        assert_eq!(curve.rate_at(SimTime(15_000_000)), 8.0);
        // Periodicity.
        assert_eq!(curve.rate_at(SimTime(25_000_000)), 2.0);
        assert_eq!(curve.max_rate(), 8.0);
        // Integral: 10 s · 2 + 5 s · 8 = 60 over [0, 15 s).
        let e = curve.expected_arrivals(SimTime::ZERO, SimTime(15_000_000));
        assert!((e - 60.0).abs() < 1e-9, "expected 60, got {e}");
        // One full period + 5 s.
        let e = curve.expected_arrivals(SimTime::ZERO, SimTime(25_000_000));
        assert!((e - 110.0).abs() < 1e-9, "expected 110, got {e}");
    }

    #[test]
    fn piecewise_sampler_tracks_the_curve_per_segment() {
        let curve = PiecewiseRate::new(vec![
            (SimDuration::secs(50), 1.0),
            (SimDuration::secs(50), 9.0),
        ]);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let arrivals =
            ArrivalProcess::sample_until(&curve, SimTime::ZERO, SimTime(100_000_000), &mut rng);
        let low = arrivals
            .iter()
            .filter(|t| t.as_micros() < 50_000_000)
            .count();
        let high = arrivals.len() - low;
        // ~50 vs ~450 expected; the high segment must clearly dominate.
        assert!(high > 4 * low, "low {low}, high {high}");
        for w in arrivals.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn diurnal_preset_peaks_mid_period() {
        let curve = PiecewiseRate::diurnal(1.0, 25.0, SimDuration::secs(240));
        let trough = curve.rate_at(SimTime::ZERO);
        let peak = curve.rate_at(SimTime(120_000_000));
        assert!(trough < 2.0, "trough {trough}");
        assert!(peak > 24.0, "peak {peak}");
        assert!(curve.max_rate() <= 25.0 + 1e-9);
    }

    #[test]
    fn thinned_process_is_deterministic_and_bounded() {
        let p = diurnal_thinned(2.0, 20.0, SimDuration::secs(60));
        let sample = |seed: u64| {
            ArrivalProcess::sample_until(
                &p,
                SimTime::ZERO,
                SimTime(60_000_000),
                &mut ChaCha8Rng::seed_from_u64(seed),
            )
        };
        assert_eq!(sample(5), sample(5));
        let (accepted, envelope) = p.sample_with_envelope(
            SimTime::ZERO,
            SimTime(60_000_000),
            &mut ChaCha8Rng::seed_from_u64(5),
        );
        assert!(accepted.len() <= envelope.len());
    }
}
