//! Saturation sweeps: offered load vs what the system sustains.
//!
//! A [`SaturationReport`] runs one [`LoadReport`](crate::LoadReport)
//! cell per offered rate and lines the points up so the knee — the
//! highest offered rate the system still absorbs — can be read off (or
//! asked for via [`SaturationReport::knee`]).

use qosc_netsim::SimDuration;

use crate::driver::LoadReport;

/// One cell of a saturation sweep.
#[derive(Debug, Clone)]
pub struct SaturationPoint {
    /// Offered rate the cell was driven at (arrivals per second).
    pub offered_per_s: f64,
    /// Requests submitted in the cell.
    pub submitted: usize,
    /// Fraction of submitted requests that formed before cut-off.
    pub formed_ratio: f64,
    /// Formed coalitions per second of window.
    pub sustained_per_s: f64,
    /// Median formation latency, if anything formed.
    pub p50: Option<SimDuration>,
    /// 90th-percentile formation latency.
    pub p90: Option<SimDuration>,
    /// 99th-percentile formation latency.
    pub p99: Option<SimDuration>,
}

impl SaturationPoint {
    /// Distils one load cell into a sweep point.
    pub fn from_report(offered_per_s: f64, report: &LoadReport) -> SaturationPoint {
        SaturationPoint {
            offered_per_s,
            submitted: report.submitted,
            formed_ratio: report.formed_ratio(),
            sustained_per_s: report.sustained_per_s(),
            p50: report.latency.quantile(0.50),
            p90: report.latency.quantile(0.90),
            p99: report.latency.quantile(0.99),
        }
    }
}

/// An offered-load sweep, ordered by offered rate.
#[derive(Debug, Clone, Default)]
pub struct SaturationReport {
    /// Sweep cells, sorted ascending by offered rate.
    pub points: Vec<SaturationPoint>,
}

impl SaturationReport {
    /// Runs `cell` once per offered rate and collects the points.
    /// `cell` receives the offered rate and returns that cell's report.
    pub fn sweep(rates: &[f64], mut cell: impl FnMut(f64) -> LoadReport) -> SaturationReport {
        let mut points: Vec<SaturationPoint> = rates
            .iter()
            .map(|&r| SaturationPoint::from_report(r, &cell(r)))
            .collect();
        points.sort_by(|a, b| a.offered_per_s.total_cmp(&b.offered_per_s));
        SaturationReport { points }
    }

    /// The saturation knee: the highest offered rate whose formed ratio
    /// is still at least `frac` (e.g. `0.95`). `None` when even the
    /// lightest cell misses the bar — the system saturates below the
    /// swept range.
    pub fn knee(&self, frac: f64) -> Option<&SaturationPoint> {
        self.points
            .iter()
            .rev()
            .find(|p| p.formed_ratio >= frac && p.submitted > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::LatencyHistogram;

    fn report(submitted: usize, formed: usize) -> LoadReport {
        let mut latency = LatencyHistogram::new();
        for i in 0..formed {
            latency.record_us(10_000 + i as u64);
        }
        LoadReport {
            submitted,
            formed,
            incomplete: 0,
            window: SimDuration::secs(10),
            latency,
            messages: 0,
        }
    }

    #[test]
    fn sweep_sorts_points_and_knee_finds_the_last_good_cell() {
        // Formed ratio collapses above 20/s regardless of call order.
        let sweep = SaturationReport::sweep(&[40.0, 5.0, 20.0], |r| {
            let submitted = (r * 10.0) as usize;
            let formed = if r <= 20.0 { submitted } else { submitted / 4 };
            report(submitted, formed)
        });
        let offered: Vec<f64> = sweep.points.iter().map(|p| p.offered_per_s).collect();
        assert_eq!(offered, vec![5.0, 20.0, 40.0]);
        let knee = sweep.knee(0.95).expect("two cells clear the bar");
        assert_eq!(knee.offered_per_s, 20.0);
        assert!(knee.p50.is_some());
        assert!(sweep.points[2].formed_ratio < 0.95);
    }

    #[test]
    fn knee_is_none_when_everything_saturates() {
        let sweep = SaturationReport::sweep(&[10.0, 20.0], |r| report((r * 10.0) as usize, 0));
        assert!(sweep.knee(0.5).is_none());
        assert!(sweep.points[0].p50.is_none());
    }
}
