//! Statistical and structural properties of the arrival samplers.
//!
//! The thinning sampler is pinned two ways: structurally (accepted
//! arrivals are a subset of the envelope process they were thinned
//! from) and statistically (on random piecewise-constant curves its
//! empirical count tracks the exact integral of the rate within a
//! Poisson-noise tolerance — the same integral the exact per-segment
//! sampler is held to).

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qosc_load::{ArrivalProcess, PiecewiseRate, PoissonArrivals, ThinnedProcess};
use qosc_netsim::{SimDuration, SimTime};

/// Builds a random piecewise curve from drawn `(len_s, rate_dhz)` pairs
/// (rates in deci-hertz so the strategy stays integral).
fn curve_of(segments: &[(u64, u64)]) -> PiecewiseRate {
    PiecewiseRate::new(
        segments
            .iter()
            .map(|&(len_s, rate_dhz)| (SimDuration::secs(5 + len_s), rate_dhz as f64 / 10.0))
            .collect(),
    )
}

/// |n − E| within 5 sigmas of Poisson noise (+ slack for tiny E).
fn close_to_poisson_mean(n: usize, expected: f64) -> bool {
    (n as f64 - expected).abs() <= 5.0 * expected.sqrt() + 10.0
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// The thinned sampler's empirical arrival count matches the exact
    /// integral of a random piecewise curve, sampled under the curve's
    /// own max-rate envelope — and so does the exact per-segment
    /// sampler, over the same window.
    #[test]
    fn thinning_tracks_the_integrated_rate_curve(
        seed in 0u64..(1 << 48),
        segments in proptest::collection::vec((0u64..30, 0u64..80), 1..5),
    ) {
        let curve = curve_of(&segments);
        let expected = curve.expected_arrivals(SimTime::ZERO, SimTime(200_000_000));
        let exact = ArrivalProcess::sample_until(
            &curve,
            SimTime::ZERO,
            SimTime(200_000_000),
            &mut ChaCha8Rng::seed_from_u64(seed),
        );
        prop_assert!(
            close_to_poisson_mean(exact.len(), expected),
            "exact sampler: {} arrivals vs expected {expected}", exact.len()
        );

        let thinned = {
            let c = curve.clone();
            ThinnedProcess::new(curve.max_rate(), move |t| c.rate_at(t))
        };
        // The numeric integral must agree with the curve's closed form.
        let numeric = thinned.expected_arrivals(SimTime::ZERO, SimTime(200_000_000));
        prop_assert!(
            (numeric - expected).abs() <= expected * 0.02 + 1.0,
            "numeric integral {numeric} vs exact {expected}"
        );
        let accepted = ArrivalProcess::sample_until(
            &thinned,
            SimTime::ZERO,
            SimTime(200_000_000),
            &mut ChaCha8Rng::seed_from_u64(seed ^ 0xD1CE),
        );
        prop_assert!(
            close_to_poisson_mean(accepted.len(), expected),
            "thinned sampler: {} arrivals vs expected {expected}", accepted.len()
        );
    }

    /// Thinning only ever removes arrivals: the accepted set is a
    /// subsequence of the envelope process, and both stay inside the
    /// sampling window.
    #[test]
    fn thinned_arrivals_are_a_subset_of_the_envelope(
        seed in 0u64..(1 << 48),
        segments in proptest::collection::vec((0u64..20, 0u64..60), 1..4),
    ) {
        let curve = curve_of(&segments);
        let envelope_rate = curve.max_rate();
        let thinned = ThinnedProcess::new(envelope_rate, move |t| curve.rate_at(t));
        let (accepted, envelope) = thinned.sample_with_envelope(
            SimTime(3_000_000),
            SimTime(120_000_000),
            &mut ChaCha8Rng::seed_from_u64(seed),
        );
        // Subsequence check: every accepted instant appears in the
        // envelope, in order.
        let mut env = envelope.iter();
        for t in &accepted {
            prop_assert!(
                env.any(|e| e == t),
                "accepted arrival {t:?} not drawn from the envelope"
            );
        }
        for t in accepted.iter().chain(envelope.iter()) {
            prop_assert!(*t >= SimTime(3_000_000) && *t < SimTime(120_000_000));
        }
        // Sanity: the envelope itself is a plain Poisson process at the
        // envelope rate.
        let expected_env = PoissonArrivals::new(envelope_rate)
            .expected_arrivals(SimTime(3_000_000), SimTime(120_000_000));
        prop_assert!(close_to_poisson_mean(envelope.len(), expected_env));
    }
}
