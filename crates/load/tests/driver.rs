//! End-to-end load-driver behaviour against real scenario runtimes:
//! the open-loop accounting adds up, and the batched Direct backend
//! (same-instant CFP coalescing + warm-started provider formulation)
//! reaches the same aggregate outcomes as the plain Direct backend on
//! the same pre-sampled plan.

use qosc_load::{LoadDriver, LoadPlan, PoissonArrivals};
use qosc_netsim::SimDuration;
use qosc_workloads::{AppTemplate, Backend, ScenarioConfig};

fn plan(seed: u64) -> LoadPlan {
    LoadPlan::sampled(
        &PoissonArrivals::new(1.5),
        SimDuration::secs(20),
        (0..6).collect(),
        AppTemplate::Surveillance,
        2,
        seed,
    )
}

fn drive(backend: Backend, seed: u64) -> qosc_load::LoadReport {
    let config = ScenarioConfig::dense(24, 0xD21_5EED ^ seed);
    let mut rt = config.build_backend(backend);
    LoadDriver::new(&plan(seed)).run(rt.as_mut())
}

#[test]
fn open_loop_accounting_adds_up() {
    let report = drive(Backend::Direct, 3);
    assert!(report.submitted > 10, "plan too thin: {report:?}");
    assert!(report.settled() <= report.submitted);
    assert!(report.formed > 0, "nothing formed: {report:?}");
    assert_eq!(report.latency.count() as usize, report.formed);
    assert!(report.messages > 0);
    assert!(report.formed_ratio() > 0.0 && report.formed_ratio() <= 1.0);
    assert!(report.sustained_per_s() > 0.0);
    let p50 = report.latency.quantile(0.5).expect("formed > 0");
    let p99 = report.latency.quantile(0.99).expect("formed > 0");
    assert!(p50 <= p99);
}

#[test]
fn runs_are_deterministic_per_seed() {
    let a = drive(Backend::Direct, 7);
    let b = drive(Backend::Direct, 7);
    assert_eq!(a.submitted, b.submitted);
    assert_eq!(a.formed, b.formed);
    assert_eq!(a.incomplete, b.incomplete);
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.latency.quantile(0.9), b.latency.quantile(0.9));
}

/// CFP batching is an engine-side optimisation; driven with the same
/// plan it must reach the same aggregate outcomes as unbatched Direct.
/// (Per-message traces may interleave differently inside one virtual
/// instant; outcomes and latency quantiles may not.)
#[test]
fn batched_backend_matches_direct_outcomes() {
    for seed in [1u64, 11, 42] {
        let direct = drive(Backend::Direct, seed);
        let batched = drive(Backend::DirectBatched, seed);
        assert_eq!(direct.submitted, batched.submitted, "seed {seed}");
        assert_eq!(direct.formed, batched.formed, "seed {seed}");
        assert_eq!(direct.incomplete, batched.incomplete, "seed {seed}");
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(
                direct.latency.quantile(q),
                batched.latency.quantile(q),
                "seed {seed}, q {q}"
            );
        }
    }
}

#[test]
fn empty_plan_yields_an_empty_report() {
    let empty = LoadPlan {
        arrivals: Vec::new(),
        ..plan(0)
    };
    let config = ScenarioConfig::dense(8, 99);
    let mut rt = config.build_backend(Backend::Direct);
    let report = LoadDriver::new(&empty).run(rt.as_mut());
    assert_eq!(report.submitted, 0);
    assert_eq!(report.settled(), 0);
    assert_eq!(report.formed_ratio(), 0.0);
    assert!(report.latency.is_empty());
}
